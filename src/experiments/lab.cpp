#include "experiments/lab.h"

#include <algorithm>
#include <set>

#include "obs/trace.h"
#include "spec/suite.h"
#include "support/error.h"
#include "support/parallel.h"
#include "support/stats.h"

namespace swapp::experiments {

const std::vector<int>& bt_sp_core_counts() {
  static const std::vector<int> kCounts = {16, 32, 64, 128};
  return kCounts;
}

const std::vector<int>& bt_sp_counter_counts() {
  // Counters at n = 3 counts; projecting at 128 exercises ACSM
  // extrapolation, exactly the situation §3.1 describes.
  static const std::vector<int> kCounts = {16, 32, 64};
  return kCounts;
}

const std::vector<int>& lu_core_counts() {
  static const std::vector<int> kCounts = {4, 8, 16};
  return kCounts;
}

core::AppBaseData collect_base_data(const nas::NasApp& app,
                                    const machine::Machine& base,
                                    const std::vector<int>& mpi_counts,
                                    const std::vector<int>& counter_counts) {
  SWAPP_SPAN("lab.collect_app_profile");
  core::AppBaseData data;
  data.app = app.name();
  data.base_machine = base.name;
  for (const int c : mpi_counts) {
    const auto world = app.run(base, c, machine::SmtMode::kSingleThread);
    data.mpi_profiles.emplace(c, world->profile());
    data.mean_compute.emplace(c, world->profile().mean_compute());
    // ST counters come for free from the same run.
    if (std::find(counter_counts.begin(), counter_counts.end(), c) !=
        counter_counts.end()) {
      data.counters_st.emplace(c, world->counters());
    }
  }
  for (const int c : counter_counts) {
    if (data.counters_st.find(c) == data.counters_st.end()) {
      const auto world = app.run(base, c, machine::SmtMode::kSingleThread);
      data.counters_st.emplace(c, world->counters());
    }
    const auto world = app.run(base, c, machine::SmtMode::kSmt);
    data.counters_smt.emplace(c, world->counters());
  }
  return data;
}

ActualRun run_actual(const nas::NasApp& app, const machine::Machine& m,
                     int ranks) {
  SWAPP_SPAN("lab.actual_run");
  const auto world = app.run(m, ranks, machine::SmtMode::kSingleThread);
  const mpi::MpiProfile& profile = world->profile();
  ActualRun out;
  out.wall = world->wall_time();
  out.mean_compute = profile.mean_compute();
  out.mean_comm = profile.mean_communication();
  for (const auto cls : {mpi::RoutineClass::kPointToPointBlocking,
                         mpi::RoutineClass::kPointToPointNonblocking,
                         mpi::RoutineClass::kCollective}) {
    out.class_elapsed[cls] = profile.mean_class_elapsed(cls);
  }
  return out;
}

core::SpecLibrary collect_spec_library(
    const machine::Machine& base, const std::vector<machine::Machine>& targets,
    const std::vector<int>& task_counts) {
  SWAPP_SPAN("lab.collect_spec_library");
  core::SpecLibrary lib;
  lib.base_machine = base.name;
  lib.base_cores_per_node = base.cores_per_node;
  for (const spec::Benchmark& b : spec::suite()) lib.names.push_back(b.name());

  const auto occupancies_for = [&](const machine::Machine& m) {
    std::set<int> occ;
    for (const int c : task_counts) {
      occ.insert(core::SpecLibrary::occupancy_for(c, m.cores_per_node));
    }
    return occ;
  };

  // One job per (machine, SMT mode, occupancy): full-suite runs are
  // independent of each other, so they fan out over the thread pool.  The
  // merge below consumes results keyed by (machine, occupancy), so the
  // library is identical for every thread count.
  struct SuiteJob {
    const machine::Machine* m = nullptr;
    machine::SmtMode mode = machine::SmtMode::kSingleThread;
    int occ = 0;
    bool on_base = false;
  };
  std::vector<SuiteJob> jobs;
  for (const int occ : occupancies_for(base)) {
    jobs.push_back({&base, machine::SmtMode::kSingleThread, occ, true});
    jobs.push_back({&base, machine::SmtMode::kSmt, occ, true});
  }
  for (const machine::Machine& target : targets) {
    core::SpecLibrary::TargetInfo& info = lib.targets[target.name];
    info.cores_per_node = target.cores_per_node;
    for (const int occ : occupancies_for(target)) {
      jobs.push_back({&target, machine::SmtMode::kSingleThread, occ, false});
    }
  }
  const std::vector<std::vector<spec::BenchmarkRun>> results =
      parallel_map(jobs, [](const SuiteJob& job) {
        return spec::run_suite(*job.m, job.mode, job.occ);
      });

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SuiteJob& job = jobs[i];
    for (const spec::BenchmarkRun& run : results[i]) {
      if (!job.on_base) {
        lib.targets[job.m->name].runtime[job.occ].emplace(run.name,
                                                          run.runtime);
      } else if (job.mode == machine::SmtMode::kSingleThread) {
        lib.base_counters_st[job.occ].emplace(run.name, run.counters);
        lib.base_runtime[job.occ].emplace(run.name, run.runtime);
      } else {
        lib.base_counters_smt[job.occ].emplace(run.name, run.counters);
      }
    }
  }
  return lib;
}

// ---------------------------------------------------------------------------
// Lab
// ---------------------------------------------------------------------------

std::string Lab::power6_name() { return machine::make_power6_575().name; }
std::string Lab::bluegene_name() { return machine::make_bluegene_p().name; }
std::string Lab::westmere_name() {
  return machine::make_westmere_x5670().name;
}

Lab::Lab(std::vector<std::string> target_names,
         std::filesystem::path cache_dir)
    : base_(machine::make_power5_hydra()), cache_(std::move(cache_dir)) {
  if (target_names.empty()) {
    target_names = {power6_name(), bluegene_name(), westmere_name()};
  }
  target_names_ = target_names;
  for (const std::string& name : target_names_) {
    targets_.emplace(name, machine::machine_by_name(name));
  }
}

const machine::Machine& Lab::target(const std::string& name) const {
  const auto it = targets_.find(name);
  if (it == targets_.end()) throw NotFound("target not prepared: " + name);
  return it->second;
}

void Lab::ensure_databases() {
  if (projector_) return;
  std::vector<machine::Machine> target_list;
  target_list.reserve(targets_.size());
  for (const auto& [name, m] : targets_) target_list.push_back(m);
  // All task counts any experiment uses (union of BT/SP and LU grids).
  std::vector<int> task_counts = bt_sp_core_counts();
  task_counts.insert(task_counts.end(), lu_core_counts().begin(),
                     lu_core_counts().end());
  // Databases come through the artifact cache: with a cache directory a
  // warm Lab performs no benchmark simulation at all.  The collectors are
  // internally parallel (suite jobs / IMB core counts).
  spec_ = cache_.spec_library(
      service::describe_spec_inputs(base_, target_list, task_counts),
      [&] { return collect_spec_library(base_, target_list, task_counts); });

  const auto imb_for = [&](const machine::Machine& m) {
    return cache_.imb_database(
        service::describe_imb_inputs(m, imb::default_core_counts(),
                                     imb::default_message_sizes()),
        [&] { return imb::measure_database(m); });
  };
  projector_ =
      std::make_unique<core::Projector>(base_, *spec_, *imb_for(base_));
  for (const auto& [name, m] : targets_) {
    projector_->add_target(name, *imb_for(m));
  }
}

const core::Projector& Lab::projector() {
  ensure_databases();
  return *projector_;
}

const core::AppBaseData& Lab::base_data(nas::Benchmark b,
                                        nas::ProblemClass c) {
  const nas::NasApp app(b, c);
  const std::string key = app.name();
  {
    std::lock_guard<std::mutex> lock(app_data_mutex_);
    const auto it = app_data_.find(key);
    if (it != app_data_.end()) return *it->second;
  }
  const bool is_lu = (b == nas::Benchmark::kLU);
  const std::vector<int>& mpi_counts =
      is_lu ? lu_core_counts() : bt_sp_core_counts();
  const std::vector<int> counter_counts =
      is_lu ? lu_core_counts() : bt_sp_counter_counts();
  // Collection runs outside the Lab lock (the cache dedups concurrent
  // requests to one stored value); with a cache directory the profile is
  // loaded instead of re-simulated.
  std::shared_ptr<const core::AppBaseData> data = cache_.app_data(
      service::describe_app_inputs(key, base_, 1, mpi_counts, counter_counts),
      [&] { return collect_base_data(app, base_, mpi_counts, counter_counts); });
  std::lock_guard<std::mutex> lock(app_data_mutex_);
  return *app_data_.emplace(key, std::move(data)).first->second;
}

const ActualRun& Lab::actual(nas::Benchmark b, nas::ProblemClass c,
                             const std::string& machine_name, int ranks) {
  const nas::NasApp app(b, c);
  const std::string key =
      app.name() + "@" + machine_name + "#" + std::to_string(ranks);
  {
    std::lock_guard<std::mutex> lock(actuals_mutex_);
    const auto it = actuals_.find(key);
    if (it != actuals_.end()) return it->second;
  }
  // The ground-truth simulation runs outside the lock so distinct
  // configurations (one per figure row) execute concurrently; emplace
  // resolves the unlikely same-key race by keeping the first insert.
  ActualRun run = run_actual(app, target(machine_name), ranks);
  std::lock_guard<std::mutex> lock(actuals_mutex_);
  return actuals_.emplace(key, std::move(run)).first->second;
}

namespace {

double component_error(Seconds projected, Seconds actual) {
  if (actual <= 0.0) return 0.0;  // component absent from the application
  return percent_error(projected, actual);
}

ErrorRow make_error_row(const core::ProjectionResult& projection,
                        const ActualRun& truth, int ranks,
                        nas::ProblemClass c) {
  ErrorRow row;
  row.cores = ranks;
  row.cls = c;
  row.p2p_nb = component_error(
      projection.comm.of(mpi::RoutineClass::kPointToPointNonblocking)
          .target_total(),
      truth.class_elapsed.at(mpi::RoutineClass::kPointToPointNonblocking));
  row.p2p_b = component_error(
      projection.comm.of(mpi::RoutineClass::kPointToPointBlocking)
          .target_total(),
      truth.class_elapsed.at(mpi::RoutineClass::kPointToPointBlocking));
  row.collectives = component_error(
      projection.comm.of(mpi::RoutineClass::kCollective).target_total(),
      truth.class_elapsed.at(mpi::RoutineClass::kCollective));
  row.overall_comm =
      component_error(projection.comm.target_total(), truth.mean_comm);
  row.computation =
      component_error(projection.compute.target_compute, truth.mean_compute);
  row.combined = component_error(projection.total_target(), truth.wall);
  row.combined_signed =
      signed_percent_error(projection.total_target(), truth.wall);
  return row;
}

}  // namespace

ErrorRow Lab::error_row(nas::Benchmark b, nas::ProblemClass c,
                        const std::string& target_name, int ranks,
                        const core::ProjectionOptions& options) {
  return error_rows({RowQuery{b, c, target_name, ranks}}, options).front();
}

std::vector<ErrorRow> Lab::error_rows(const std::vector<RowQuery>& queries,
                                      const core::ProjectionOptions& options) {
  SWAPP_SPAN("lab.error_rows");
  ensure_databases();
  // Shared inputs are built before the fan-outs: after this loop the batch
  // engine and the ground-truth rows only read.
  for (const RowQuery& q : queries) base_data(q.bench, q.cls);

  std::vector<core::ProjectionRequest> requests;
  requests.reserve(queries.size());
  for (const RowQuery& q : queries) {
    requests.push_back(core::ProjectionRequest{&base_data(q.bench, q.cls),
                                               q.target, q.ranks, options});
  }
  const std::vector<core::ProjectionResult> projections =
      projector_->project_many(requests);
  // Ground truth is independent per row; parallel_map preserves row order.
  const std::vector<ActualRun> truths =
      parallel_map(queries, [&](const RowQuery& q) {
        return actual(q.bench, q.cls, q.target, q.ranks);
      });

  std::vector<ErrorRow> rows;
  rows.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    rows.push_back(make_error_row(projections[i], truths[i],
                                  queries[i].ranks, queries[i].cls));
  }
  return rows;
}

core::ProjectionResult Lab::project(nas::Benchmark b, nas::ProblemClass c,
                                    const std::string& target_name, int ranks,
                                    const core::ProjectionOptions& options) {
  ensure_databases();
  const core::AppBaseData& data = base_data(b, c);
  return projector_->project(data, target_name, ranks, options);
}

FigureData Lab::figure(nas::Benchmark b, const std::string& target_name,
                       const core::ProjectionOptions& options) {
  FigureData fig;
  fig.app = nas::to_string(b);
  fig.target = target_name;
  fig.title = fig.app + " results on " + target_name;

  const bool is_lu = (b == nas::Benchmark::kLU);
  const std::vector<int> counts =
      is_lu ? std::vector<int>{16} : bt_sp_core_counts();

  // All rows go through the batched comparison path: projections share the
  // per-(target, occupancy) spec indexes inside project_many, ground-truth
  // runs fan out over the pool.
  std::vector<RowQuery> queries;
  queries.reserve(counts.size() * 2);
  for (const int ranks : counts) {
    for (const auto cls : {nas::ProblemClass::kC, nas::ProblemClass::kD}) {
      queries.push_back(RowQuery{b, cls, target_name, ranks});
    }
  }
  fig.rows = error_rows(queries, options);
  return fig;
}

TextTable FigureData::to_table() const {
  TextTable table({"Cores/Class", "P2P-NB", "P2P-B", "COLLECTIVES",
                   "Overall Comm", "Computation", "Combined"});
  table.set_title(title + "  (percent error magnitude vs. measured)");
  for (const ErrorRow& row : rows) {
    table.add_row({std::to_string(row.cores) + "/" + nas::to_string(row.cls),
                   TextTable::num(row.p2p_nb), TextTable::num(row.p2p_b),
                   TextTable::num(row.collectives),
                   TextTable::num(row.overall_comm),
                   TextTable::num(row.computation),
                   TextTable::num(row.combined)});
  }
  return table;
}

}  // namespace swapp::experiments
