// Experiment harness: reproduces the paper's evaluation (§4).
//
// The Lab owns everything an experiment needs and caches the expensive
// artifacts so a figure driver only pays for what it touches:
//   * SPEC-style benchmark data on base + targets (SpecData);
//   * IMB databases per machine;
//   * NAS-MZ base profiles (MPI profiles at Cj, counters at Ci, ST+SMT);
//   * ground-truth runs of the applications on the targets.
// Projection and ground truth are kept strictly separate: the projector only
// ever sees base profiles and benchmark databases.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/profiles.h"
#include "core/projector.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "service/artifact_cache.h"
#include "support/table.h"

namespace swapp::experiments {

/// The task counts at which the paper evaluates BT/SP (Figs. 3–5, 7–9).
const std::vector<int>& bt_sp_core_counts();
/// Counter-collection counts Ci (n ≤ 4, per §3.1) for BT/SP.
const std::vector<int>& bt_sp_counter_counts();
/// LU-MZ is limited to 16 tasks (4×4 zones); profiled at {4, 8, 16}.
const std::vector<int>& lu_core_counts();

/// Ground truth: one application run on one machine.
struct ActualRun {
  Seconds wall = 0.0;
  Seconds mean_compute = 0.0;
  Seconds mean_comm = 0.0;
  std::map<mpi::RoutineClass, Seconds> class_elapsed;  ///< per-task mean
};

/// One bar group of a paper figure: percent error per component.
struct ErrorRow {
  int cores = 0;
  nas::ProblemClass cls = nas::ProblemClass::kC;
  double p2p_nb = 0.0;
  double p2p_b = 0.0;
  double collectives = 0.0;
  double overall_comm = 0.0;
  double computation = 0.0;
  double combined = 0.0;  ///< the headline projection error
  /// Signed combined error (for the paper's "54% above actual" statistic).
  double combined_signed = 0.0;
};

struct FigureData {
  std::string title;
  std::string app;     ///< "BT-MZ" etc.
  std::string target;  ///< machine name
  std::vector<ErrorRow> rows;

  TextTable to_table() const;
};

class Lab {
 public:
  /// `target_names`: which of the three paper targets to prepare; empty =
  /// all three.  The base system is always the POWER5+ Hydra.
  /// `cache_dir`: artifact-cache directory shared across processes; empty
  /// keeps all artifacts in memory (every run re-simulates them).
  explicit Lab(std::vector<std::string> target_names = {},
               std::filesystem::path cache_dir = {});

  static std::string power6_name();
  static std::string bluegene_name();
  static std::string westmere_name();

  const machine::Machine& base() const { return base_; }
  const machine::Machine& target(const std::string& name) const;
  const std::vector<std::string>& target_names() const {
    return target_names_;
  }

  /// Lazily-built projector over all prepared targets.
  const core::Projector& projector();

  /// Base-machine application data (cached per app).
  const core::AppBaseData& base_data(nas::Benchmark b, nas::ProblemClass c);

  /// Ground-truth run (cached).
  const ActualRun& actual(nas::Benchmark b, nas::ProblemClass c,
                          const std::string& machine_name, int ranks);

  /// Projects and compares: one figure bar group.
  ErrorRow error_row(nas::Benchmark b, nas::ProblemClass c,
                     const std::string& target_name, int ranks,
                     const core::ProjectionOptions& options = {});

  /// One figure bar group's coordinates, for the batched comparison API.
  struct RowQuery {
    nas::Benchmark bench = nas::Benchmark::kBT;
    nas::ProblemClass cls = nas::ProblemClass::kC;
    std::string target;
    int ranks = 0;
  };

  /// Batched `error_row`: all projections go through the batch engine
  /// (`Projector::project_many`, sharing indexed spec views and — when the
  /// options pin a reference count — surrogate searches), and the
  /// ground-truth runs fan out over the pool.  rows[i] is byte-identical to
  /// `error_row(queries[i]...)` at every thread count.
  std::vector<ErrorRow> error_rows(const std::vector<RowQuery>& queries,
                                   const core::ProjectionOptions& options = {});

  /// Full per-figure data: BT/SP style (all core counts × both classes).
  /// Rows are independent (ground-truth run + projection each), so they fan
  /// out over the swapp thread pool; row order and values are identical for
  /// every thread count.
  FigureData figure(nas::Benchmark b, const std::string& target_name,
                    const core::ProjectionOptions& options = {});

  /// Raw projection access (for examples and ablations).
  core::ProjectionResult project(nas::Benchmark b, nas::ProblemClass c,
                                 const std::string& target_name, int ranks,
                                 const core::ProjectionOptions& options = {});

 private:
  machine::Machine base_;
  std::vector<std::string> target_names_;
  std::map<std::string, machine::Machine> targets_;
  // Expensive inputs (spec library, IMB databases, app profiles) live in the
  // content-addressed artifact cache: shared_ptr entries stay valid for
  // holders even if evicted, and a cache directory makes them persistent.
  service::ArtifactCache cache_;
  std::shared_ptr<const core::SpecLibrary> spec_;
  std::unique_ptr<core::Projector> projector_;
  // Per-Lab lookups shared by the parallel figure rows, guarded by a mutex
  // each so entries stay stable while others are inserted concurrently.
  std::map<std::string, std::shared_ptr<const core::AppBaseData>> app_data_;
  std::mutex app_data_mutex_;
  std::map<std::string, ActualRun> actuals_;
  std::mutex actuals_mutex_;

  void ensure_databases();
};

/// Collects base-machine application data for an arbitrary NAS app.
core::AppBaseData collect_base_data(const nas::NasApp& app,
                                    const machine::Machine& base,
                                    const std::vector<int>& mpi_counts,
                                    const std::vector<int>& counter_counts);

/// Runs the app on a machine and summarises the ground truth.
ActualRun run_actual(const nas::NasApp& app, const machine::Machine& m,
                     int ranks);

/// Benchmark (SPEC-style) library for base + targets, collected at every
/// node occupancy the given task counts imply.
core::SpecLibrary collect_spec_library(
    const machine::Machine& base, const std::vector<machine::Machine>& targets,
    const std::vector<int>& task_counts);

}  // namespace swapp::experiments
