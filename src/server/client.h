// Client side of the projection-server protocol: connect to the daemon's
// Unix-domain socket, send one framed "swapp-batch" document, block for the
// framed "swapp-batch-result" answer.  `swapp request` is a thin wrapper
// around this class plus the same table renderer `swapp batch` uses.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>

#include "server/protocol.h"

namespace swapp::server {

/// Connects a SOCK_STREAM Unix-domain socket to `path` and returns the fd.
/// Throws swapp::Error when the socket cannot be created or connected
/// (e.g. no server is listening).  Exposed separately so protocol tests can
/// drive raw frames at a live server.
int connect_unix(const std::filesystem::path& path);

class Client {
 public:
  explicit Client(const std::filesystem::path& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request document and blocks for the response.  Protocol-level
  /// failures the server reports (busy, bad-request, ...) come back as a
  /// Response with ok == false; a connection the server dropped without
  /// answering (crash, truncation) throws swapp::Error.
  Response call(const std::string& request_payload,
                std::size_t max_response_bytes = std::size_t{64} << 20);

  /// Sends one request document and returns the raw response payload without
  /// decoding it — the transport for answers that are not "swapp-batch-result"
  /// documents (stats reports).  Same error behaviour as call().
  std::string call_raw(const std::string& request_payload,
                       std::size_t max_response_bytes = std::size_t{64} << 20);

  int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace swapp::server
