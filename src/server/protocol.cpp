#include "server/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "io/record.h"
#include "support/error.h"

namespace swapp::server {

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kOversized: return "oversized";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  throw InternalError("unknown ErrorCode");
}

ErrorCode error_code_from(const std::string& name) {
  if (name == "bad-request") return ErrorCode::kBadRequest;
  if (name == "oversized") return ErrorCode::kOversized;
  if (name == "busy") return ErrorCode::kBusy;
  if (name == "shutting-down") return ErrorCode::kShuttingDown;
  if (name == "internal") return ErrorCode::kInternal;
  throw InvalidArgument("unknown error code: " + name);
}

Response Response::failure(ErrorCode code, std::string message) {
  Response response;
  response.ok = false;
  response.error = code;
  response.message = std::move(message);
  return response;
}

std::string encode_response(const Response& response) {
  std::ostringstream os;
  io::RecordWriter writer(os, "swapp-batch-result", 1);
  if (!response.ok) {
    writer.row("error").field(to_string(response.error))
        .field(response.message);
    writer.finish();
    return os.str();
  }
  for (const ResultRow& r : response.results) {
    writer.row("result")
        .field(r.app)
        .field(r.target)
        .field(r.tasks)
        .field(r.compute_s)
        .field(r.comm_s)
        .field(r.total_s);
  }
  for (const PhaseRow& p : response.phases) {
    writer.row("phase").field(p.phase).field(p.seconds);
  }
  for (const ArtifactRow& a : response.artifacts) {
    writer.row("artifact").field(a.name).field(a.source);
  }
  writer.finish();  // the last row stays pending until flushed
  return os.str();
}

Response decode_response(const std::string& payload) {
  std::istringstream in(payload);
  io::RecordReader reader(in, "swapp-batch-result", 1);
  Response response;
  response.ok = true;
  io::Record rec;
  while (reader.next(rec)) {
    if (rec.tag == "error") {
      if (rec.fields.size() < 2) {
        throw InvalidArgument("error row needs: code, message");
      }
      return Response::failure(error_code_from(rec.str(0)), rec.str(1));
    }
    if (rec.tag == "result") {
      if (rec.fields.size() < 6) {
        throw InvalidArgument(
            "result row needs: app, target, tasks, compute, comm, total");
      }
      ResultRow r;
      r.app = rec.str(0);
      r.target = rec.str(1);
      r.tasks = static_cast<int>(rec.integer(2));
      r.compute_s = rec.num(3);
      r.comm_s = rec.num(4);
      r.total_s = rec.num(5);
      response.results.push_back(std::move(r));
      continue;
    }
    if (rec.tag == "phase") {
      if (rec.fields.size() < 2) {
        throw InvalidArgument("phase row needs: name, seconds");
      }
      response.phases.push_back(PhaseRow{rec.str(0), rec.num(1)});
      continue;
    }
    if (rec.tag == "artifact") {
      if (rec.fields.size() < 2) {
        throw InvalidArgument("artifact row needs: name, source");
      }
      response.artifacts.push_back(ArtifactRow{rec.str(0), rec.str(1)});
      continue;
    }
    throw InvalidArgument("unknown record in response document: " + rec.tag);
  }
  return response;
}

std::string encode_stats_request(StatsKind kind) {
  std::ostringstream os;
  io::RecordWriter writer(os, "swapp-stats", 1);
  writer.row("query").field(kind == StatsKind::kHealth
                                ? std::string("health")
                                : std::string("stats"));
  writer.finish();
  return os.str();
}

StatsRequest classify_stats_request(const std::string& payload) {
  // Cheap peek before any parsing: only a "swapp-stats" header goes down
  // the stats path; every other payload takes the batch path (and its
  // existing error reporting) untouched.
  if (payload.rfind("#swapp \"swapp-stats\"", 0) != 0) return {};
  std::istringstream in(payload);
  io::RecordReader reader(in, "swapp-stats", 1);
  io::Record rec;
  while (reader.next(rec)) {
    if (rec.tag != "query") {
      throw InvalidArgument("unknown record in stats request: " + rec.tag);
    }
    if (rec.fields.empty()) {
      throw InvalidArgument("stats query row needs: stats|health");
    }
    const std::string what = rec.str(0);
    if (what == "stats") return StatsRequest{true, StatsKind::kStats};
    if (what == "health") return StatsRequest{true, StatsKind::kHealth};
    throw InvalidArgument("unknown stats query (use stats or health): " +
                          what);
  }
  throw InvalidArgument("stats request has no query row");
}

bool is_sweep_request(const std::string& payload) {
  // The closing quote plus separating space keep "swapp-sweep-result"
  // documents (which a client may echo back by mistake) off the sweep path.
  return payload.rfind("#swapp \"swapp-sweep\" ", 0) == 0;
}

std::string encode_stats_report(const StatsReport& report) {
  std::ostringstream os;
  io::RecordWriter writer(os, "swapp-stats-result", 1);
  writer.row("server")
      .field(report.draining ? std::string("draining") : std::string("ok"))
      .field(report.uptime_s);
  writer.row("queue").field(report.queue_depth).field(report.queue_capacity);
  writer.row("inflight")
      .field(report.inflight_batches)
      .field(report.inflight_rows);
  writer.row("lifetime")
      .field(report.connections)
      .field(report.requests)
      .field(report.batches)
      .field(report.busy_rejections)
      .field(report.protocol_errors)
      .field(report.stats_requests);
  for (const StatsScope& scope : report.scopes) {
    writer.row("scope").field(scope.name).field(scope.seconds);
    for (const obs::CounterValue& c : scope.metrics.counters) {
      writer.row("counter").field(c.name).field(c.value);
    }
    for (const obs::GaugeValue& g : scope.metrics.gauges) {
      writer.row("gauge").field(g.name).field(g.value);
    }
    for (const obs::HistogramValue& h : scope.metrics.histograms) {
      auto& row = writer.row("histogram")
                      .field(h.name)
                      .field(h.count)
                      .field(h.sum)
                      .field(h.min)
                      .field(h.max);
      for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
        row.field(h.buckets[b]);
      }
    }
  }
  writer.finish();
  return os.str();
}

StatsReport decode_stats_report(const std::string& payload) {
  std::istringstream in(payload);
  io::RecordReader reader(in, "swapp-stats-result", 1);
  StatsReport report;
  StatsScope* scope = nullptr;
  io::Record rec;
  while (reader.next(rec)) {
    if (rec.tag == "server") {
      if (rec.fields.size() < 2) {
        throw InvalidArgument("server row needs: status, uptime");
      }
      report.draining = rec.str(0) == "draining";
      report.uptime_s = rec.num(1);
      continue;
    }
    if (rec.tag == "queue") {
      if (rec.fields.size() < 2) {
        throw InvalidArgument("queue row needs: depth, capacity");
      }
      report.queue_depth = static_cast<std::uint64_t>(rec.integer(0));
      report.queue_capacity = static_cast<std::uint64_t>(rec.integer(1));
      continue;
    }
    if (rec.tag == "inflight") {
      if (rec.fields.size() < 2) {
        throw InvalidArgument("inflight row needs: batches, rows");
      }
      report.inflight_batches = static_cast<std::uint64_t>(rec.integer(0));
      report.inflight_rows = static_cast<std::uint64_t>(rec.integer(1));
      continue;
    }
    if (rec.tag == "lifetime") {
      if (rec.fields.size() < 6) {
        throw InvalidArgument(
            "lifetime row needs: connections, requests, batches, busy, "
            "proto_errors, stats");
      }
      report.connections = static_cast<std::uint64_t>(rec.integer(0));
      report.requests = static_cast<std::uint64_t>(rec.integer(1));
      report.batches = static_cast<std::uint64_t>(rec.integer(2));
      report.busy_rejections = static_cast<std::uint64_t>(rec.integer(3));
      report.protocol_errors = static_cast<std::uint64_t>(rec.integer(4));
      report.stats_requests = static_cast<std::uint64_t>(rec.integer(5));
      continue;
    }
    if (rec.tag == "scope") {
      if (rec.fields.size() < 2) {
        throw InvalidArgument("scope row needs: name, seconds");
      }
      report.scopes.push_back(StatsScope{rec.str(0), rec.num(1), {}});
      scope = &report.scopes.back();
      continue;
    }
    if (rec.tag == "counter" || rec.tag == "gauge" ||
        rec.tag == "histogram") {
      if (scope == nullptr) {
        throw InvalidArgument("metric row before any scope row: " + rec.tag);
      }
      if (rec.tag == "counter") {
        if (rec.fields.size() < 2) {
          throw InvalidArgument("counter row needs: name, value");
        }
        scope->metrics.counters.push_back(obs::CounterValue{
            rec.str(0), static_cast<std::uint64_t>(rec.integer(1))});
        continue;
      }
      if (rec.tag == "gauge") {
        if (rec.fields.size() < 2) {
          throw InvalidArgument("gauge row needs: name, value");
        }
        scope->metrics.gauges.push_back(
            obs::GaugeValue{rec.str(0), rec.num(1)});
        continue;
      }
      if (rec.fields.size() < 5 + obs::kHistogramBuckets) {
        throw InvalidArgument(
            "histogram row needs: name, count, sum, min, max, 32 buckets");
      }
      obs::HistogramValue h;
      h.name = rec.str(0);
      h.count = static_cast<std::uint64_t>(rec.integer(1));
      h.sum = rec.num(2);
      h.min = rec.num(3);
      h.max = rec.num(4);
      for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
        h.buckets[b] = static_cast<std::uint64_t>(rec.integer(5 + b));
      }
      scope->metrics.histograms.push_back(std::move(h));
      continue;
    }
    throw InvalidArgument("unknown record in stats document: " + rec.tag);
  }
  return report;
}

namespace {

/// Reads exactly `n` bytes into `out` (which may be null to discard).
/// Returns false on EOF before `n` bytes arrived.
bool read_exact(int fd, char* out, std::size_t n) {
  std::size_t got = 0;
  char sink[4096];
  while (got < n) {
    char* dst = out != nullptr ? out + got : sink;
    const std::size_t want =
        out != nullptr ? n - got : std::min(n - got, sizeof sink);
    const ssize_t rc = ::recv(fd, dst, want, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("socket read failed: ") + std::strerror(errno));
    }
    if (rc == 0) return false;
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

}  // namespace

Frame read_frame(int fd, std::size_t max_bytes) {
  unsigned char header[4];
  // A clean close before the first header byte is a normal end of
  // conversation; a close inside the header or payload is a truncated frame.
  {
    ssize_t rc;
    do {
      rc = ::recv(fd, header, 1, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      throw Error(std::string("socket read failed: ") + std::strerror(errno));
    }
    if (rc == 0) return Frame{FrameStatus::kEof, {}};
  }
  if (!read_exact(fd, reinterpret_cast<char*>(header) + 1, 3)) {
    return Frame{FrameStatus::kTruncated, {}};
  }
  const std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24) |
                               (static_cast<std::uint32_t>(header[1]) << 16) |
                               (static_cast<std::uint32_t>(header[2]) << 8) |
                               static_cast<std::uint32_t>(header[3]);
  if (length > max_bytes) {
    // Drain the announced payload so the next frame starts clean; the bytes
    // themselves are client-controlled noise we refuse to buffer.
    if (!read_exact(fd, nullptr, length)) {
      return Frame{FrameStatus::kTruncated, {}};
    }
    return Frame{FrameStatus::kOversized, {}};
  }
  Frame frame;
  frame.payload.resize(length);
  if (length > 0 && !read_exact(fd, frame.payload.data(), length)) {
    return Frame{FrameStatus::kTruncated, {}};
  }
  frame.status = FrameStatus::kOk;
  return frame;
}

void write_frame(int fd, const std::string& payload) {
  SWAPP_REQUIRE(payload.size() <= 0xFFFFFFFFull,
                "frame payload exceeds the 32-bit length prefix");
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8),
      static_cast<unsigned char>(length),
  };
  const auto send_all = [fd](const char* data, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE here instead of
      // killing the process with SIGPIPE.
      const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw Error(std::string("socket write failed: ") +
                    std::strerror(errno));
      }
      sent += static_cast<std::size_t>(rc);
    }
  };
  send_all(reinterpret_cast<const char*>(header), sizeof header);
  send_all(payload.data(), payload.size());
}

}  // namespace swapp::server
