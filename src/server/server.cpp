#include "server/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "server/options.h"
#include "support/error.h"

namespace swapp::server {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void fill_unix_address(sockaddr_un& addr, const std::string& path) {
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
}

}  // namespace

struct Server::Impl {
  Impl(machine::Machine b, ServerConfig c, ServiceSetup s, RowValidator v,
       SweepSetup ss)
      : base(std::move(b)),
        config(std::move(c)),
        setup(std::move(s)),
        validate(std::move(v)),
        sweep_setup(std::move(ss)),
        cache(std::make_shared<service::ArtifactCache>(
            config.service.cache_dir, config.service.cache_capacity,
            config.service.cache_dir_max_bytes)) {}

  machine::Machine base;
  ServerConfig config;
  ServiceSetup setup;
  RowValidator validate;
  SweepSetup sweep_setup;
  std::shared_ptr<service::ArtifactCache> cache;

  int listen_fd = -1;
  int wake_fd[2] = {-1, -1};
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  bool waited = false;

  /// One admitted request: a client batch (rows) or a sweep (spec), plus
  /// the promise the scheduler fulfils with the *encoded* response payload —
  /// batches resolve to a "swapp-batch-result" document, sweeps to a
  /// "swapp-sweep-result" document, failures of either to an error response.
  struct Item {
    bool is_sweep = false;
    std::vector<service::BatchRow> rows;
    sweep::SweepSpec spec;  ///< meaningful when is_sweep
    std::promise<std::string> promise;
    double enqueued_us = 0.0;
  };

  std::mutex mutex;  ///< guards queue and stop_requested
  std::condition_variable cv;
  std::deque<Item> queue;
  bool stop_requested = false;

  std::thread acceptor;
  std::thread scheduler;

  // --- live telemetry -------------------------------------------------------
  // The ticker is the scheduler's telemetry companion: the scheduler itself
  // can block for minutes inside a coalesced run, so a dedicated thread
  // rotates the stats window on the configured cadence regardless.  Stats
  // queries are answered inline on connection threads (never queued), so
  // introspection cannot pause request processing.
  obs::MetricsWindow window{config.stats_window_slots};
  std::thread ticker;
  std::mutex ticker_mutex;
  std::condition_variable ticker_cv;
  bool ticker_stop = false;
  double start_us = 0.0;

  std::atomic<std::uint64_t> inflight_batches{0};
  std::atomic<std::uint64_t> inflight_rows{0};
  std::atomic<std::uint64_t> stats_requests{0};

  /// Connection registry: the entry owns the fd; the thread only uses it.
  struct Conn {
    std::thread thread;
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex conn_mutex;
  std::vector<Conn> conns;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> busy{0};
  std::atomic<std::uint64_t> proto_errors{0};

  void acceptor_loop();
  void serve_connection(int fd);
  std::string handle_payload(const std::string& payload);
  std::string admit(Item item);  ///< queue + wait for the scheduler's answer
  void scheduler_loop();
  void run_batch(std::vector<Item> items);
  void run_sweep(Item item);
  void ticker_loop();
  StatsReport build_stats(StatsKind kind);
};

void Server::Impl::acceptor_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_fd[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // accepting is impossible; shut down rather than spin
    }
    if (fds[1].revents != 0) break;  // shutdown byte arrived
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    ++accepted;
    SWAPP_COUNT("server.connections", 1);
    std::lock_guard<std::mutex> lock(conn_mutex);
    // Reap finished connections so a long-lived server does not accumulate
    // one joinable thread (and one fd) per past client.
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->done->load()) {
        it->thread.join();
        ::close(it->fd);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
    Conn conn;
    conn.fd = fd;
    conn.done = std::make_shared<std::atomic<bool>>(false);
    const std::shared_ptr<std::atomic<bool>> done = conn.done;
    conn.thread = std::thread([this, fd, done] {
      serve_connection(fd);
      done->store(true);
    });
    conns.push_back(std::move(conn));
  }
  // Stop admitting and wake the scheduler for its final drain.  Admission
  // flips before the public `draining()` flag, so anyone who observes
  // draining() == true is guaranteed a shutting-down response, not a queue
  // slot.
  {
    std::lock_guard<std::mutex> lock(mutex);
    stop_requested = true;
  }
  cv.notify_all();
  stopping.store(true);
}

void Server::Impl::serve_connection(int fd) {
  try {
    while (true) {
      const Frame frame = read_frame(fd, config.max_request_bytes);
      if (frame.status == FrameStatus::kEof) break;
      if (frame.status == FrameStatus::kTruncated) {
        // The peer vanished mid-frame; there is nobody left to answer.
        ++proto_errors;
        SWAPP_COUNT("server.truncated_frames", 1);
        break;
      }
      SWAPP_SPAN("server.request");
      std::string answer;
      if (frame.status == FrameStatus::kOversized) {
        ++proto_errors;
        SWAPP_COUNT("server.oversized_frames", 1);
        answer = encode_response(Response::failure(
            ErrorCode::kOversized,
            "request frame exceeds " +
                std::to_string(config.max_request_bytes) + " bytes"));
      } else {
        // Introspection requests are answered right here on the connection
        // thread — they bypass the admission queue entirely, so a stats
        // probe works even while a coalesced run occupies the scheduler.
        StatsRequest stats{};
        try {
          stats = classify_stats_request(frame.payload);
        } catch (const Error& e) {
          ++proto_errors;
          SWAPP_COUNT("server.bad_requests", 1);
          write_frame(fd,
                      encode_response(Response::failure(
                          ErrorCode::kBadRequest, e.what())));
          continue;
        }
        if (stats.is_stats) {
          ++stats_requests;
          SWAPP_COUNT("server.stats_requests", 1);
          write_frame(fd, encode_stats_report(build_stats(stats.kind)));
          continue;
        }
        answer = handle_payload(frame.payload);
      }
      write_frame(fd, answer);
    }
  } catch (const std::exception&) {
    // A hard socket error (peer gone mid-write) ends this conversation;
    // the server itself is unaffected.
  }
  ::shutdown(fd, SHUT_RDWR);  // the registry entry owns and closes the fd
}

std::string Server::Impl::handle_payload(const std::string& payload) {
  // Parse and validate on the connection thread, so a malformed or
  // unsatisfiable request is rejected without ever occupying the admission
  // queue — and without poisoning the coalesced run other clients ride in.
  Item item;
  try {
    if (is_sweep_request(payload)) {
      if (!sweep_setup) {
        throw InvalidArgument("this server does not serve sweeps");
      }
      std::istringstream in(payload);
      item.spec = sweep::read_sweep_spec(in);
      item.is_sweep = true;
      const machine::Machine target =
          machine::machine_by_name(item.spec.target);
      // Cap on the multiplicities alone, BEFORE expanding — a typo'd range
      // axis must fail fast, not enumerate a billion machines first.
      const std::size_t points = sweep::point_count(item.spec);
      if (points > config.max_sweep_points) {
        throw InvalidArgument(
            "sweep expands to " + std::to_string(points) +
            " points, over the server cap of " +
            std::to_string(config.max_sweep_points));
      }
      if (validate) {
        // Validate every expanded point as the batch row it amounts to, so
        // app-shape checks (profiled task counts, known apps) apply to
        // sweeps exactly as they do to batches.
        for (const sweep::SweepPoint& point :
             sweep::expand(item.spec, target)) {
          service::BatchRow row;
          row.app = item.spec.app;
          row.target = item.spec.target;
          row.tasks = point.tasks;
          row.threads = item.spec.threads;
          const std::string message = validate(row);
          if (!message.empty()) throw InvalidArgument(message);
        }
      }
    } else {
      std::istringstream in(payload);
      item.rows = service::read_batch_requests(in);
      for (const service::BatchRow& row : item.rows) {
        machine::machine_by_name(row.target);  // throws NotFound when unknown
        if (row.tasks < 1) {
          throw InvalidArgument("request needs tasks >= 1, got " +
                                std::to_string(row.tasks));
        }
        if (row.threads < 1) {
          throw InvalidArgument("request needs threads >= 1, got " +
                                std::to_string(row.threads));
        }
        if (validate) {
          const std::string message = validate(row);
          if (!message.empty()) throw InvalidArgument(message);
        }
      }
    }
  } catch (const Error& e) {
    ++proto_errors;
    SWAPP_COUNT("server.bad_requests", 1);
    return encode_response(
        Response::failure(ErrorCode::kBadRequest, e.what()));
  }
  return admit(std::move(item));
}

std::string Server::Impl::admit(Item item) {
  std::future<std::string> pending;
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (stop_requested) {
      return encode_response(
          Response::failure(ErrorCode::kShuttingDown,
                            "server is draining and accepts no new work"));
    }
    if (queue.size() >= config.max_queue) {
      ++busy;
      SWAPP_COUNT("server.busy_rejections", 1);
      return encode_response(Response::failure(
          ErrorCode::kBusy, "admission queue is full (" +
                                std::to_string(config.max_queue) +
                                " pending batches); retry later"));
    }
    item.enqueued_us = obs::trace_now_us();
    pending = item.promise.get_future();
    queue.push_back(std::move(item));
    SWAPP_GAUGE_SET("server.queue_depth", static_cast<double>(queue.size()));
  }
  cv.notify_all();
  // The scheduler fulfils every admitted promise, shutdown drain included,
  // so this wait always terminates.
  return pending.get();
}

void Server::Impl::scheduler_loop() {
  while (true) {
    std::vector<Item> items;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] {
        return stop_requested || queue.size() >= config.coalesce_min;
      });
      if (queue.empty()) {
        if (stop_requested) return;  // fully drained
        continue;
      }
      const double woke_us = obs::trace_now_us();
      if (config.coalesce_window.count() > 0 && !stop_requested) {
        // Linger so near-simultaneous clients join this run.  Only
        // shutdown cuts the window short; further arrivals simply ride
        // along when it closes (wait_for re-arms with the remaining time
        // on their notifies).
        cv.wait_for(lock, config.coalesce_window,
                    [&] { return stop_requested; });
      }
      // How long the scheduler held work back for coalescing — near zero
      // with the default eager drain, up to the window otherwise.
      SWAPP_OBSERVE("server.coalesce_linger_us",
                    obs::trace_now_us() - woke_us);
      // Everything queued right now becomes one coalesced run; batches
      // arriving during the run pile up for the next one.
      while (!queue.empty()) {
        items.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      SWAPP_GAUGE_SET("server.queue_depth", 0.0);
    }
    // One drain = one scheduler turn: the batches coalesce into a single
    // run, then each sweep executes against the same resident cache (so it
    // reuses whatever the batches just materialised, and vice versa next
    // turn).
    std::vector<Item> batch_items;
    std::vector<Item> sweep_items;
    for (Item& item : items) {
      (item.is_sweep ? sweep_items : batch_items).push_back(std::move(item));
    }
    if (!batch_items.empty()) run_batch(std::move(batch_items));
    for (Item& item : sweep_items) run_sweep(std::move(item));
  }
}

void Server::Impl::run_batch(std::vector<Item> items) {
  SWAPP_SPAN("server.batch");
  const double drained_us = obs::trace_now_us();
  for (const Item& item : items) {
    SWAPP_OBSERVE("server.queue_wait_us", drained_us - item.enqueued_us);
  }
  std::vector<service::BatchRow> all_rows;
  for (const Item& item : items) {
    all_rows.insert(all_rows.end(), item.rows.begin(), item.rows.end());
  }
  // In-flight state is what a stats probe reads while this run executes —
  // it must be set before the run and cleared after the promises resolve.
  inflight_batches.store(1);
  inflight_rows.store(all_rows.size());

  try {
    // Targets in first-appearance order over the coalesced rows — the same
    // derivation `swapp batch` uses, so the spec-library cache key matches
    // between a served batch and the one-shot CLI on the same requests.
    std::vector<machine::Machine> targets;
    for (const service::BatchRow& row : all_rows) {
      bool known = false;
      for (const machine::Machine& t : targets) known |= t.name == row.target;
      if (!known) targets.push_back(machine::machine_by_name(row.target));
    }
    service::ServiceConfig service_config = config.service;
    service_config.shared_cache = cache;
    service::ProjectionService svc(base, std::move(targets), service_config);
    setup(svc, all_rows);

    std::vector<std::vector<service::ServiceRequest>> slices;
    slices.reserve(items.size());
    for (const Item& item : items) {
      std::vector<service::ServiceRequest> batch;
      batch.reserve(item.rows.size());
      for (const service::BatchRow& row : item.rows) {
        batch.push_back(service::to_service_request(row));
      }
      slices.push_back(std::move(batch));
    }
    const double run_start_us = obs::trace_now_us();
    const service::ProjectionService::CoalescedReport report =
        svc.run_coalesced(slices);
    SWAPP_OBSERVE("server.run_us", obs::trace_now_us() - run_start_us);

    std::vector<PhaseRow> phases;
    for (const service::ProjectionService::PhaseTime& p :
         report.combined.phases) {
      phases.push_back(PhaseRow{p.phase, p.seconds});
    }
    std::vector<ArtifactRow> artifacts;
    for (const service::ProjectionService::ArtifactNote& note :
         report.combined.artifacts) {
      artifacts.push_back(ArtifactRow{note.name, to_string(note.source)});
    }
    // All accounting lands BEFORE any promise resolves: a client that just
    // received its answer may immediately probe the stats endpoint, and it
    // must see this run counted and no longer in flight.
    std::vector<Response> responses(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      responses[i].ok = true;
      for (const core::ProjectionResult& r : report.slices[i]) {
        responses[i].results.push_back(ResultRow{r.app, r.target, r.cores,
                                                 r.compute.target_compute,
                                                 r.comm.target_total(),
                                                 r.total_target()});
      }
      responses[i].phases = phases;
      responses[i].artifacts = artifacts;
      served += report.slices[i].size();
      // End-to-end request latency: admission to answered, per client batch.
      SWAPP_OBSERVE("server.request_us",
                    obs::trace_now_us() - items[i].enqueued_us);
    }
    ++batches;
    SWAPP_COUNT("server.batches", 1);
    SWAPP_COUNT("server.requests", all_rows.size());
    inflight_rows.store(0);
    inflight_batches.store(0);
    for (std::size_t i = 0; i < items.size(); ++i) {
      items[i].promise.set_value(encode_response(responses[i]));
    }
  } catch (const std::exception& e) {
    // Admission-time validation keeps this to genuine execution failures
    // (e.g. a thread count no profile matches); every rider of the poisoned
    // run gets the same typed error.
    SWAPP_COUNT("server.failed_batches", 1);
    for (const Item& item : items) {
      SWAPP_OBSERVE("server.request_us",
                    obs::trace_now_us() - item.enqueued_us);
    }
    inflight_rows.store(0);
    inflight_batches.store(0);
    const std::string failure =
        encode_response(Response::failure(ErrorCode::kInternal, e.what()));
    for (Item& item : items) item.promise.set_value(failure);
  }
}

void Server::Impl::run_sweep(Item item) {
  SWAPP_SPAN("server.sweep");
  SWAPP_OBSERVE("server.queue_wait_us",
                obs::trace_now_us() - item.enqueued_us);
  inflight_batches.store(1);
  inflight_rows.store(sweep::point_count(item.spec));
  try {
    sweep::SweepConfig sweep_config;
    sweep_config.shared_cache = cache;
    sweep_config.max_points = config.max_sweep_points;
    sweep::SweepRunner runner(
        base, {machine::machine_by_name(item.spec.target)}, sweep_config);
    sweep_setup(runner, item.spec);
    const double run_start_us = obs::trace_now_us();
    const sweep::SweepRunner::SweepReport report = runner.run(item.spec);
    SWAPP_OBSERVE("server.run_us", obs::trace_now_us() - run_start_us);
    std::ostringstream os;
    sweep::write_sweep_result(os,
                              sweep::make_sweep_result(item.spec, report));
    // Accounting mirrors run_batch: a sweep is one coalesced-run turn whose
    // rows are its points, and it lands before the promise resolves.
    served += report.points.size();
    ++batches;
    SWAPP_COUNT("server.batches", 1);
    SWAPP_COUNT("server.requests", report.points.size());
    SWAPP_COUNT("server.sweeps", 1);
    inflight_rows.store(0);
    inflight_batches.store(0);
    SWAPP_OBSERVE("server.request_us",
                  obs::trace_now_us() - item.enqueued_us);
    item.promise.set_value(os.str());
  } catch (const std::exception& e) {
    SWAPP_COUNT("server.failed_batches", 1);
    SWAPP_OBSERVE("server.request_us",
                  obs::trace_now_us() - item.enqueued_us);
    inflight_rows.store(0);
    inflight_batches.store(0);
    item.promise.set_value(encode_response(
        Response::failure(ErrorCode::kInternal, e.what())));
  }
}

void Server::Impl::ticker_loop() {
  std::unique_lock<std::mutex> lock(ticker_mutex);
  while (!ticker_stop) {
    ticker_cv.wait_for(lock, config.stats_slot, [&] { return ticker_stop; });
    if (ticker_stop) return;
    // Snapshotting outside the lock would let wait() race past a rotation;
    // rotation is cheap (one registry sweep) so holding it is fine.
    window.rotate(obs::metrics_snapshot(), obs::trace_now_us());
  }
}

StatsReport Server::Impl::build_stats(StatsKind kind) {
  StatsReport report;
  const double now_us = obs::trace_now_us();
  report.draining = stopping.load();
  report.uptime_s = start_us > 0.0 ? (now_us - start_us) / 1e6 : 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex);
    report.queue_depth = queue.size();
  }
  report.queue_capacity = config.max_queue;
  report.inflight_batches = inflight_batches.load();
  report.inflight_rows = inflight_rows.load();
  report.connections = accepted.load();
  report.requests = served.load();
  report.batches = batches.load();
  report.busy_rejections = busy.load();
  report.protocol_errors = proto_errors.load();
  report.stats_requests = stats_requests.load();
  if (kind == StatsKind::kHealth) return report;

  // Window scopes diff the *current* snapshot against ring entries, so the
  // answer includes activity up to this instant — a probe right after a
  // burst sees it without waiting for the next rotation.
  obs::MetricsSnapshot life = obs::metrics_snapshot();
  for (const double seconds : {1.0, 10.0, 60.0}) {
    obs::MetricsWindow::Delta d = window.delta_over(seconds, life, now_us);
    StatsScope scope;
    scope.name = std::to_string(static_cast<int>(seconds)) + "s";
    scope.seconds = d.seconds;
    scope.metrics = std::move(d.metrics);
    report.scopes.push_back(std::move(scope));
  }
  StatsScope lifetime;
  lifetime.name = "lifetime";
  lifetime.seconds = report.uptime_s;
  lifetime.metrics = std::move(life);
  report.scopes.push_back(std::move(lifetime));
  return report;
}

Server::Server(machine::Machine base, ServerConfig config, ServiceSetup setup,
               RowValidator validate, SweepSetup sweep_setup) {
  SWAPP_REQUIRE(setup != nullptr, "server needs a service setup callback");
  SWAPP_REQUIRE(config.max_queue >= 1, "max_queue must be >= 1");
  SWAPP_REQUIRE(config.coalesce_min >= 1, "coalesce_min must be >= 1");
  SWAPP_REQUIRE(config.coalesce_window.count() >= 0,
                "coalesce_window must be non-negative");
  impl_ = std::make_unique<Impl>(std::move(base), std::move(config),
                                 std::move(setup), std::move(validate),
                                 std::move(sweep_setup));
}

Server::~Server() {
  if (impl_->started.load() && !impl_->waited) {
    request_stop();
    try {
      wait();
    } catch (...) {
      // Destruction must not throw; leaked fds die with the process.
    }
  }
}

void Server::start() {
  Impl& s = *impl_;
  SWAPP_REQUIRE(!s.started.load(), "server already started");
  const std::string path = s.config.socket_path.string();
  parse_socket_path(path);

  // A stale socket file from a crashed server is replaced; a live one is
  // refused (a successful connect means somebody is serving it).
  std::error_code ec;
  if (std::filesystem::exists(s.config.socket_path, ec)) {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (probe >= 0) {
      sockaddr_un addr;
      fill_unix_address(addr, path);
      const bool live =
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
          0;
      ::close(probe);
      if (live) throw Error("socket is already being served: " + path);
    }
    std::filesystem::remove(s.config.socket_path, ec);
  }

  s.listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (s.listen_fd < 0) throw_errno("socket");
  sockaddr_un addr;
  fill_unix_address(addr, path);
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(s.listen_fd);
    s.listen_fd = -1;
    errno = saved;
    throw_errno("bind(" + path + ")");
  }
  if (::listen(s.listen_fd, 64) != 0) throw_errno("listen");
  if (::pipe2(s.wake_fd, O_CLOEXEC) != 0) throw_errno("pipe2");

  s.started.store(true);
  s.start_us = obs::trace_now_us();
  // Seed the window so the very first stats probe has a baseline to diff
  // against, then let the ticker rotate on the configured cadence.
  s.window.rotate(obs::metrics_snapshot(), s.start_us);
  s.ticker = std::thread([&s] { s.ticker_loop(); });
  s.scheduler = std::thread([&s] { s.scheduler_loop(); });
  s.acceptor = std::thread([&s] { s.acceptor_loop(); });
}

int Server::shutdown_fd() const noexcept { return impl_->wake_fd[1]; }

void Server::request_stop() noexcept {
  if (impl_->wake_fd[1] < 0) return;
  const char byte = 's';
  ssize_t rc;
  do {
    rc = ::write(impl_->wake_fd[1], &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

bool Server::draining() const noexcept { return impl_->stopping.load(); }

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->queue.size();
}

void Server::wait() {
  Impl& s = *impl_;
  SWAPP_REQUIRE(s.started.load(), "server not started");
  if (s.waited) return;
  if (s.acceptor.joinable()) s.acceptor.join();
  if (s.scheduler.joinable()) s.scheduler.join();
  {
    std::lock_guard<std::mutex> lock(s.ticker_mutex);
    s.ticker_stop = true;
  }
  s.ticker_cv.notify_all();
  if (s.ticker.joinable()) s.ticker.join();
  // Every admitted promise is now fulfilled, but a reader that just received
  // its future result may not have written the response yet.  Shut down only
  // the read side: a reader parked in recv wakes with EOF and exits, while an
  // in-flight response write still reaches the client.
  std::vector<Impl::Conn> conns;
  {
    std::lock_guard<std::mutex> lock(s.conn_mutex);
    for (Impl::Conn& conn : s.conns) ::shutdown(conn.fd, SHUT_RD);
    conns.swap(s.conns);
  }
  for (Impl::Conn& conn : conns) {
    if (conn.thread.joinable()) conn.thread.join();
    ::close(conn.fd);
  }
  ::close(s.listen_fd);
  s.listen_fd = -1;
  ::close(s.wake_fd[0]);
  ::close(s.wake_fd[1]);
  s.wake_fd[0] = s.wake_fd[1] = -1;
  std::error_code ec;
  std::filesystem::remove(s.config.socket_path, ec);
  s.waited = true;
}

service::ArtifactCache& Server::cache() noexcept { return *impl_->cache; }

std::uint64_t Server::connections_accepted() const noexcept {
  return impl_->accepted.load();
}
std::uint64_t Server::requests_served() const noexcept {
  return impl_->served.load();
}
std::uint64_t Server::batches_run() const noexcept {
  return impl_->batches.load();
}
std::uint64_t Server::busy_rejections() const noexcept {
  return impl_->busy.load();
}
std::uint64_t Server::protocol_errors() const noexcept {
  return impl_->proto_errors.load();
}

StatsReport Server::stats_report(StatsKind kind) {
  return impl_->build_stats(kind);
}

}  // namespace swapp::server
