// Flag parsing for `swapp serve`, in the parse_thread_count mould: every
// parser accepts exactly the documented grammar and throws InvalidArgument
// with the offending text quoted for anything else — a daemon that silently
// coerces "0" or "10x" into a default serves wrong limits for its whole
// lifetime.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>

namespace swapp::server {

/// Admission-queue depth: a positive decimal integer with no trailing
/// characters.
std::size_t parse_queue_depth(const std::string& value);

/// Coalesce window in milliseconds: a non-negative decimal integer with no
/// trailing characters ("0" — the default — keeps the eager drain).
std::chrono::milliseconds parse_coalesce_window(const std::string& value);

/// Byte size: a positive decimal integer, optionally suffixed with k, m, or
/// g (case-insensitive, powers of 1024).  "64k" -> 65536.
std::uintmax_t parse_byte_size(const std::string& value);

/// Unix-domain socket path: non-empty and short enough for sockaddr_un
/// (kMaxSocketPath bytes).  Returns the path unchanged.
inline constexpr std::size_t kMaxSocketPath = 107;
std::filesystem::path parse_socket_path(const std::string& value);

/// Metrics sampling rate: a decimal in (0, 1].  "1" keeps recording exact;
/// "0.015625" keeps 1-in-64.
double parse_sampling_rate(const std::string& value);

/// `swapp stats --watch` interval: a positive decimal integer number of
/// seconds.
unsigned parse_watch_seconds(const std::string& value);

}  // namespace swapp::server
