// Wire protocol of the projection server.
//
// Framing: every message is a 4-byte big-endian payload length followed by
// that many payload bytes, over a SOCK_STREAM Unix-domain socket.  The
// payload is an io/record document — the exact serialisation the artifact
// cache already canonicalizes — so the wire format is as boring, diffable,
// and version-checked as the on-disk formats:
//
//   request  frame: a "swapp-batch" v1 document (service/batch_format.h) —
//                   byte-for-byte the `swapp batch` request file.
//   response frame: a "swapp-batch-result" v1 document with rows
//       result "<app>" "<target>" <tasks> <compute_s> <comm_s> <total_s>
//       phase "<name>" <seconds>
//       artifact "<name>" "<source>"
//     or, on failure, exactly one row
//       error "<code>" "<message>"
//
// Error codes are a closed enum so clients can react without string
// matching: `busy` (admission queue full — retry later), `bad-request`
// (malformed document or unknown app/target), `oversized` (frame above the
// server's --max-request-bytes), `shutting-down` (server is draining), and
// `internal` (batch execution failed).
//
// Doubles round-trip exactly through the record format (17 significant
// digits), which is what lets `swapp request` render a table byte-identical
// to `swapp batch` from decoded response rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace swapp::server {

/// Typed failure classes a response can carry.
enum class ErrorCode {
  kBadRequest,
  kOversized,
  kBusy,
  kShuttingDown,
  kInternal,
};
std::string to_string(ErrorCode code);
/// Inverse of to_string; throws InvalidArgument for unknown codes.
ErrorCode error_code_from(const std::string& name);

/// One projection result row — the columns of the `swapp batch` table,
/// carried at full double precision.
struct ResultRow {
  std::string app;
  std::string target;
  int tasks = 0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double total_s = 0.0;
};

/// Wall-clock of one service phase of the (coalesced) batch this request
/// rode in.
struct PhaseRow {
  std::string phase;
  double seconds = 0.0;
};

/// One acquired artifact and the cache tier that satisfied it.
struct ArtifactRow {
  std::string name;
  std::string source;
};

struct Response {
  bool ok = false;
  ErrorCode error = ErrorCode::kInternal;  ///< meaningful when !ok
  std::string message;                     ///< meaningful when !ok
  std::vector<ResultRow> results;
  std::vector<PhaseRow> phases;
  std::vector<ArtifactRow> artifacts;

  static Response failure(ErrorCode code, std::string message);
};

std::string encode_response(const Response& response);
/// Throws swapp::Error on a malformed document.
Response decode_response(const std::string& payload);

// --- introspection (stats / health) -----------------------------------------
// A second request document kind rides the same framing: a "swapp-stats" v1
// document whose single row is `query "stats"` or `query "health"`.  The
// server answers these *inline on the connection thread* — they never enter
// the admission queue, so introspection works even while a coalesced batch
// occupies the scheduler, and never pauses request processing.  The answer
// is a "swapp-stats-result" v1 document:
//
//   server "<ok|draining>" <uptime_s>
//   queue <depth> <capacity>
//   inflight <batches> <rows>
//   lifetime <connections> <requests> <batches> <busy> <proto_errors> <stats>
//   scope "<name>" <covered_seconds>
//   counter "<name>" <value>
//   gauge "<name>" <value>
//   histogram "<name>" <count> <sum> <min> <max> <b0> ... <b31>
//
// counter/gauge/histogram rows attach to the most recent scope row; a
// `health` query answers the same head rows with no scopes.  Histogram rows
// carry all 32 log2 buckets, so the client can render quantiles and
// Prometheus exposition without another round trip.

/// What kind of introspection a request asks for.  kStats returns the full
/// report (windowed metric scopes included); kHealth only the cheap head.
enum class StatsKind {
  kStats,
  kHealth,
};

/// Encodes a "swapp-stats" v1 request document.
std::string encode_stats_request(StatsKind kind);

/// Classifies a request payload: a "swapp-stats" document yields its
/// StatsKind, anything else (the normal "swapp-batch" path included) yields
/// nullopt-like absence via the bool.  Throws swapp::Error on a document
/// that *is* "swapp-stats" but malformed.
struct StatsRequest {
  bool is_stats = false;
  StatsKind kind = StatsKind::kStats;
};
StatsRequest classify_stats_request(const std::string& payload);

// --- sweeps -----------------------------------------------------------------
// A third request document kind rides the same framing: a "swapp-sweep" v1
// sweep specification (sweep/sweep.h) — byte-for-byte the `swapp sweep
// --spec` file.  Sweeps pass through the same admission queue as batches and
// execute in scheduler turns against the resident cache, so a sweep and the
// batches it coalesces with share spec libraries, IMB databases, profiles,
// and persisted surrogates.  The answer is a "swapp-sweep-result" v1
// document (sweep/result.h), or a plain error response on failure — clients
// sniff with sweep::is_sweep_result.

/// True iff `payload` carries a "swapp-sweep" request document.  The probe
/// requires the closing quote, so "swapp-sweep-result" payloads never match.
bool is_sweep_request(const std::string& payload);

/// One named metrics scope of a stats report: the process lifetime or one
/// trailing window ("1s"/"10s"/"60s"), with the wall time it actually
/// covers.
struct StatsScope {
  std::string name;
  double seconds = 0.0;
  obs::MetricsSnapshot metrics;
};

struct StatsReport {
  bool draining = false;
  double uptime_s = 0.0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t inflight_batches = 0;  ///< coalesced runs executing now
  std::uint64_t inflight_rows = 0;     ///< projection rows in those runs
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;  ///< projection rows served, lifetime
  std::uint64_t batches = 0;   ///< coalesced runs, lifetime
  std::uint64_t busy_rejections = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t stats_requests = 0;
  std::vector<StatsScope> scopes;  ///< empty for a health answer
};

std::string encode_stats_report(const StatsReport& report);
/// Throws swapp::Error on a malformed document.
StatsReport decode_stats_report(const std::string& payload);

// --- framing ----------------------------------------------------------------

/// Outcome of reading one frame from a connection.
enum class FrameStatus {
  kOk,         ///< payload holds a complete frame
  kEof,        ///< peer closed cleanly before a new frame started
  kTruncated,  ///< peer closed mid-frame; no response is possible
  kOversized,  ///< announced length exceeded max_bytes; payload discarded,
               ///< the stream is positioned at the next frame
};

struct Frame {
  FrameStatus status = FrameStatus::kEof;
  std::string payload;  ///< set when status == kOk
};

/// Reads one length-prefixed frame from `fd`.  An oversized announcement is
/// drained from the stream (so the connection survives) but its payload is
/// dropped.  Throws swapp::Error on hard I/O errors; EINTR is retried.
Frame read_frame(int fd, std::size_t max_bytes);

/// Writes one length-prefixed frame to `fd` (retrying short writes and
/// EINTR).  Throws swapp::Error on I/O errors, including a closed peer.
void write_frame(int fd, const std::string& payload);

}  // namespace swapp::server
