#include "server/options.h"

#include <algorithm>
#include <cctype>
#include <exception>

#include "support/error.h"

namespace swapp::server {

namespace {

/// Digits-only decimal parse; -1 for anything else (including overflow).
long long parse_positive_decimal(const std::string& digits) {
  const bool all_digits =
      !digits.empty() &&
      std::all_of(digits.begin(), digits.end(),
                  [](unsigned char c) { return std::isdigit(c) != 0; });
  if (!all_digits) return -1;
  try {
    return std::stoll(digits);
  } catch (const std::exception&) {
    return -1;  // out of range
  }
}

}  // namespace

std::size_t parse_queue_depth(const std::string& value) {
  const long long v = parse_positive_decimal(value);
  SWAPP_REQUIRE(v >= 1,
                "--max-queue must be a positive integer, got '" + value + "'");
  return static_cast<std::size_t>(v);
}

std::chrono::milliseconds parse_coalesce_window(const std::string& value) {
  const long long v = parse_positive_decimal(value);
  SWAPP_REQUIRE(v >= 0,
                "--coalesce-window must be a non-negative integer number of "
                "milliseconds, got '" +
                    value + "'");
  return std::chrono::milliseconds(v);
}

std::uintmax_t parse_byte_size(const std::string& value) {
  std::string digits = value;
  std::uintmax_t scale = 1;
  if (!digits.empty()) {
    switch (std::tolower(static_cast<unsigned char>(digits.back()))) {
      case 'k': scale = 1024ull; break;
      case 'm': scale = 1024ull * 1024; break;
      case 'g': scale = 1024ull * 1024 * 1024; break;
      default: scale = 1; break;
    }
    if (scale != 1) digits.pop_back();
  }
  const long long v = parse_positive_decimal(digits);
  SWAPP_REQUIRE(v >= 1,
                "byte size must be a positive integer with an optional "
                "k/m/g suffix, got '" +
                    value + "'");
  const std::uintmax_t bytes = static_cast<std::uintmax_t>(v);
  SWAPP_REQUIRE(bytes <= UINTMAX_MAX / scale,
                "byte size overflows, got '" + value + "'");
  return bytes * scale;
}

double parse_sampling_rate(const std::string& value) {
  double rate = -1.0;
  try {
    std::size_t parsed = 0;
    rate = std::stod(value, &parsed);
    if (parsed != value.size()) rate = -1.0;
  } catch (const std::exception&) {
    rate = -1.0;
  }
  SWAPP_REQUIRE(rate > 0.0 && rate <= 1.0,
                "--metrics-sampling must be a decimal in (0, 1], got '" +
                    value + "'");
  return rate;
}

unsigned parse_watch_seconds(const std::string& value) {
  const long long v = parse_positive_decimal(value);
  SWAPP_REQUIRE(v >= 1 && v <= 86400,
                "--watch must be a positive integer number of seconds, "
                "got '" +
                    value + "'");
  return static_cast<unsigned>(v);
}

std::filesystem::path parse_socket_path(const std::string& value) {
  SWAPP_REQUIRE(!value.empty(), "--socket path must not be empty");
  SWAPP_REQUIRE(value.size() <= kMaxSocketPath,
                "--socket path exceeds the " +
                    std::to_string(kMaxSocketPath) +
                    "-byte sockaddr_un limit, got '" + value + "'");
  return value;
}

}  // namespace swapp::server
