// Long-running projection server: the resident owner of the artifact cache.
//
// `swapp serve` turns the batch pipeline into a daemon.  A `Server` listens
// on a Unix-domain socket and runs three kinds of threads:
//
//   * An acceptor, which only accepts connections and spawns per-connection
//     readers — it never parses, validates, or blocks on the queue, so a
//     flood of requests cannot stall new connections.
//   * Per-connection readers, which decode frames (server/protocol.h),
//     validate rows, and submit each client batch to a bounded admission
//     queue.  Past `max_queue` pending batches the reader answers with a
//     typed `busy` response instead of queueing — backpressure is explicit
//     and immediate, never an unbounded buffer.
//   * One scheduler, which drains *everything* queued at once and executes
//     it as a single coalesced `ProjectionService` run.  Batches that arrive
//     while a run is in flight pile up and form the next coalesced run, so
//     the planner's dedup (shared spec indexes, shared GA surrogate
//     searches) works across clients that never heard of each other.
//
// All runs share one resident `ArtifactCache` (ServiceConfig::shared_cache),
// making the daemon the single process that touches the cache directory —
// concurrent clients can no longer redundantly recompute an artifact the way
// concurrent `swapp batch` processes can.  "swapp-sweep" requests ride the
// same admission queue and execute in scheduler turns through a per-request
// `sweep::SweepRunner` against that same resident cache, so a sweep shares
// spec libraries, IMB databases, app profiles, and persisted surrogates with
// the ordinary batches around it.
//
// Shutdown is graceful by construction: a byte written to `shutdown_fd()`
// (async-signal-safe, exactly what the CLI's SIGINT/SIGTERM handler does)
// stops the acceptor, flips admission to `shutting-down` responses, lets the
// scheduler drain every already-admitted batch, fulfils every pending
// response, and only then tears connections down.  `wait()` returns when all
// of that has happened.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "server/protocol.h"
#include "service/batch_format.h"
#include "service/service.h"
#include "sweep/runner.h"

namespace swapp::server {

struct ServerConfig {
  std::filesystem::path socket_path;
  /// Admission bound: client batches queued but not yet scheduled.  A full
  /// queue rejects with a typed `busy` response.
  std::size_t max_queue = 64;
  /// Largest request frame accepted; bigger announcements get a typed
  /// `oversized` response (the connection survives).
  std::size_t max_request_bytes = std::size_t{1} << 20;
  /// The scheduler waits until at least this many batches are queued before
  /// draining (shutdown drains regardless).  1 — the default — adds no
  /// latency; tests raise it to force deterministic cross-client coalescing.
  std::size_t coalesce_min = 1;
  /// Once the scheduler has work, it lingers up to this long before
  /// draining so near-simultaneous clients land in the same coalesced run
  /// (and share the planner's spec-index/GA-search dedup).  The window is a
  /// latency ceiling, not a floor: shutdown cuts it short, and 0 — the
  /// default — preserves the eager drain.
  std::chrono::milliseconds coalesce_window{0};
  /// Hard cap on a served sweep's expanded point count; specs beyond it are
  /// rejected at admission as `bad-request` (checked on the multiplicities
  /// alone, before any expansion).
  std::size_t max_sweep_points = 512;
  /// Stats window geometry: a telemetry ticker thread snapshots the metrics
  /// registry every `stats_slot` into a ring of `stats_window_slots`
  /// entries (default 60 x 1s), so the stats endpoint can answer "last
  /// 1s/10s/60s" rates and latency quantiles, not just lifetime totals.
  /// Tests shrink the slot to drive rotation fast.
  std::size_t stats_window_slots = 60;
  std::chrono::milliseconds stats_slot{1000};
  /// Per-batch service configuration.  `shared_cache` is overwritten by the
  /// server with its resident cache; cache_dir/cache_capacity/
  /// cache_dir_max_bytes configure that resident cache instead.
  service::ServiceConfig service;
};

class Server {
 public:
  /// Configures one freshly-built per-batch ProjectionService: install
  /// collectors and register every app named by `rows`.  Runs on the
  /// scheduler thread, once per coalesced batch.
  using ServiceSetup = std::function<void(
      service::ProjectionService&, const std::vector<service::BatchRow>&)>;
  /// Admission-time row check, run on connection threads before queueing;
  /// return a non-empty message to reject the client's batch as
  /// `bad-request`.  Must be pure and thread-safe.  Target names are always
  /// resolved against the machine registry first, so validators only need
  /// app-shape checks.
  using RowValidator = std::function<std::string(const service::BatchRow&)>;
  /// Configures one freshly-built SweepRunner for an admitted "swapp-sweep"
  /// request: install collectors and register the app the spec names.  Runs
  /// on the scheduler thread, once per served sweep.  When absent, sweep
  /// requests are rejected as `bad-request`.
  using SweepSetup = std::function<void(sweep::SweepRunner&,
                                        const sweep::SweepSpec&)>;

  Server(machine::Machine base, ServerConfig config, ServiceSetup setup,
         RowValidator validate = nullptr, SweepSetup sweep_setup = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket (replacing a stale file, refusing a live server) and
  /// starts the acceptor and scheduler threads.  Throws swapp::Error on
  /// socket errors.
  void start();

  /// Writing one byte to this descriptor requests graceful shutdown; it is
  /// the only async-signal-safe entry point.  Valid after start().
  int shutdown_fd() const noexcept;
  /// Convenience wrapper around writing to shutdown_fd().
  void request_stop() noexcept;
  /// True once shutdown has been requested (draining or stopped).
  bool draining() const noexcept;
  /// Client batches admitted but not yet claimed by the scheduler.
  std::size_t queue_depth() const;

  /// Blocks until shutdown was requested, every admitted batch has been
  /// drained and answered, and all threads are joined.  Removes the socket
  /// file.
  void wait();

  /// The resident cache shared by every batch this server runs.
  service::ArtifactCache& cache() noexcept;

  // Lifetime counters (test and `swapp serve` log surface; the obs metrics
  // carry the same numbers when enabled).
  std::uint64_t connections_accepted() const noexcept;
  std::uint64_t requests_served() const noexcept;  ///< projection rows
  std::uint64_t batches_run() const noexcept;      ///< coalesced runs
  std::uint64_t busy_rejections() const noexcept;
  std::uint64_t protocol_errors() const noexcept;

  /// The report a `query "stats"` (full) or `query "health"` request gets:
  /// uptime, queue and in-flight state, lifetime counters, and (full only)
  /// the lifetime metrics snapshot plus 1s/10s/60s window scopes.  Built
  /// without touching the scheduler, so it is also a direct test surface.
  StatsReport stats_report(StatsKind kind);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace swapp::server
