#include "server/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.h"

namespace swapp::server {

int connect_unix(const std::filesystem::path& path) {
  const std::string name = path.string();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw Error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, name.c_str(), sizeof(addr.sun_path) - 1);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    throw Error("cannot connect to " + name + ": " + std::strerror(saved));
  }
  return fd;
}

Client::Client(const std::filesystem::path& socket_path)
    : fd_(connect_unix(socket_path)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::call(const std::string& request_payload,
                      std::size_t max_response_bytes) {
  return decode_response(call_raw(request_payload, max_response_bytes));
}

std::string Client::call_raw(const std::string& request_payload,
                             std::size_t max_response_bytes) {
  write_frame(fd_, request_payload);
  Frame frame = read_frame(fd_, max_response_bytes);
  switch (frame.status) {
    case FrameStatus::kOk:
      return std::move(frame.payload);
    case FrameStatus::kEof:
    case FrameStatus::kTruncated:
      throw Error("server closed the connection before answering");
    case FrameStatus::kOversized:
      throw Error("server response exceeds " +
                  std::to_string(max_response_bytes) + " bytes");
  }
  throw InternalError("unreachable frame status");
}

}  // namespace swapp::server
