// IMB-style MPI benchmark suite, including the paper's custom multi-Sendrecv.
//
// These benchmarks produce the target-machine parameters of Eq. 3:
// P_Cj(m_i, S_k) — the time of MPI routine m_i at message size S_k and core
// count C_j — for both the base and target machines.  The paper's extra
// multi-Sendrecv benchmark measures x successions of Isend/Irecv followed by
// one Waitall, which lets the projection separate library overhead from time
// in flight (Eq. 1: T_transfer = T_libraryOverhead + x · T_inFlight).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "mpi/types.h"
#include "support/interp.h"
#include "support/units.h"

namespace swapp::imb {

/// Benchmarks in the suite.  Pingpong/Sendrecv parameterise blocking p2p;
/// the collectives parameterise themselves; MultiSendrecv parameterises
/// nonblocking exchange phases (Waitall).
enum class ImbBenchmark {
  kPingPong,
  kSendrecv,
  kExchange,
  kBcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kAlltoall,
  kBarrier,
  kMultiSendrecv,
};

std::string to_string(ImbBenchmark b);

/// All benchmarks, in execution order.
std::vector<ImbBenchmark> all_benchmarks();

/// One measurement: average per-operation completion time.
struct ImbSample {
  ImbBenchmark benchmark = ImbBenchmark::kPingPong;
  int ranks = 0;
  Bytes bytes = 0;
  int sequences = 1;  ///< x of multi-Sendrecv; 1 elsewhere
  Seconds time = 0.0;
};

/// Runs one benchmark configuration on the machine and returns the averaged
/// per-call time (excluding warm-up iterations).  `near_pairs` selects the
/// intra-node pairing for the pairwise patterns (IMB reports intra- and
/// inter-cluster performance separately, as the paper notes in §2.2).
ImbSample run_imb(const machine::Machine& m, ImbBenchmark benchmark,
                  int ranks, Bytes bytes, int repetitions = 16,
                  int sequences = 1, bool near_pairs = false);

/// Default sweep grids used throughout the experiments.
const std::vector<Bytes>& default_message_sizes();
const std::vector<int>& default_core_counts();

/// The benchmark database SWAPP consumes: per-routine (core count × message
/// size) tables plus the two multi-Sendrecv tables (x = 1 and x = 2) needed
/// to solve Eq. 1 for T_libraryOverhead and T_inFlight.
struct ImbDatabase {
  std::string machine_name;
  int cores_per_node = 1;
  std::map<mpi::Routine, CoreSizeTable> tables;
  /// Inter-node (far-pair) multi-Sendrecv at x = 1 and x = 2.
  CoreSizeTable multi_sendrecv_x1;
  CoreSizeTable multi_sendrecv_x2;
  /// Intra-node (near-pair) counterparts.
  CoreSizeTable multi_sendrecv_near_x1;
  CoreSizeTable multi_sendrecv_near_x2;

  /// Per-op time of `routine` at (`bytes`, `ranks`), interpolated.
  Seconds lookup(mpi::Routine routine, Bytes bytes, int ranks) const;
  /// Eq. 1 applied to the multi-Sendrecv tables: transfer time of a Waitall
  /// completing `in_flight` messages of `bytes` each, a fraction
  /// `intra_fraction` of which stay within a node.
  Seconds multi_sendrecv_time(double in_flight, Bytes bytes, int ranks,
                              double intra_fraction = 0.0) const;

  /// Intra-node share of messages whose mean |peer − self| rank distance is
  /// `rank_distance`, under block placement on this machine.
  double intra_node_fraction(double rank_distance) const;
};

/// Measures the full database for a machine (the "benchmark data for the
/// target system" the paper assumes is published/available).
ImbDatabase measure_database(const machine::Machine& m,
                             const std::vector<int>& core_counts,
                             const std::vector<Bytes>& sizes);
ImbDatabase measure_database(const machine::Machine& m);

}  // namespace swapp::imb
