#include "imb/suite.h"

#include <algorithm>
#include <cmath>

#include "mpi/world.h"
#include "support/error.h"
#include "support/parallel.h"

namespace swapp::imb {

std::string to_string(ImbBenchmark b) {
  switch (b) {
    case ImbBenchmark::kPingPong: return "PingPong";
    case ImbBenchmark::kSendrecv: return "Sendrecv";
    case ImbBenchmark::kExchange: return "Exchange";
    case ImbBenchmark::kBcast: return "Bcast";
    case ImbBenchmark::kReduce: return "Reduce";
    case ImbBenchmark::kAllreduce: return "Allreduce";
    case ImbBenchmark::kAllgather: return "Allgather";
    case ImbBenchmark::kAlltoall: return "Alltoall";
    case ImbBenchmark::kBarrier: return "Barrier";
    case ImbBenchmark::kMultiSendrecv: return "multi-Sendrecv";
  }
  throw InternalError("unknown ImbBenchmark");
}

std::vector<ImbBenchmark> all_benchmarks() {
  return {ImbBenchmark::kPingPong,  ImbBenchmark::kSendrecv,
          ImbBenchmark::kExchange,  ImbBenchmark::kBcast,
          ImbBenchmark::kReduce,    ImbBenchmark::kAllreduce,
          ImbBenchmark::kAllgather, ImbBenchmark::kAlltoall,
          ImbBenchmark::kBarrier,   ImbBenchmark::kMultiSendrecv};
}

namespace {

/// One benchmark iteration for one rank.  `partner`-style pairings follow the
/// IMB conventions; ranks without a role in a pattern skip the iteration.
void iteration(mpi::RankCtx& ctx, ImbBenchmark benchmark, Bytes bytes,
               int sequences, bool near_pairs) {
  const int n = ctx.size();
  const int r = ctx.rank();
  switch (benchmark) {
    case ImbBenchmark::kPingPong: {
      // First and last rank: the farthest pair under block placement.
      const int a = 0;
      const int b = n - 1;
      if (r == a) {
        ctx.send(b, bytes);
        ctx.recv(b, bytes);
      } else if (r == b) {
        ctx.recv(a, bytes);
        ctx.send(a, bytes);
      }
      break;
    }
    case ImbBenchmark::kSendrecv: {
      const int right = (r + 1) % n;
      const int left = (r + n - 1) % n;
      if (n >= 2) ctx.sendrecv(right, bytes, left, bytes);
      break;
    }
    case ImbBenchmark::kExchange: {
      if (n < 2) break;
      const int right = (r + 1) % n;
      const int left = (r + n - 1) % n;
      std::vector<mpi::Request> reqs;
      reqs.push_back(ctx.irecv(left, bytes, 1));
      if (left != right) reqs.push_back(ctx.irecv(right, bytes, 2));
      reqs.push_back(ctx.isend(right, bytes, 1));
      if (left != right) reqs.push_back(ctx.isend(left, bytes, 2));
      ctx.waitall(reqs);
      break;
    }
    case ImbBenchmark::kBcast:
      ctx.bcast(0, bytes);
      break;
    case ImbBenchmark::kReduce:
      ctx.reduce(0, bytes);
      break;
    case ImbBenchmark::kAllreduce:
      ctx.allreduce(bytes);
      break;
    case ImbBenchmark::kAllgather:
      ctx.allgather(bytes);
      break;
    case ImbBenchmark::kAlltoall:
      ctx.alltoall(bytes);
      break;
    case ImbBenchmark::kBarrier:
      ctx.barrier();
      break;
    case ImbBenchmark::kMultiSendrecv: {
      // Far pairing (r, r + n/2) measures inter-node exchange; near pairing
      // (r, r ^ 1) measures intra-node exchange under block placement — the
      // paper's custom benchmark for nonblocking exchange phases, split the
      // way IMB splits intra-/inter-cluster results.
      if (n < 2) break;
      int partner = -1;
      if (near_pairs) {
        partner = r ^ 1;
        if (partner >= n) break;
      } else {
        const int half = n / 2;
        if (r >= 2 * half) break;  // odd straggler idles
        partner = r < half ? r + half : r - half;
      }
      std::vector<mpi::Request> reqs;
      reqs.reserve(static_cast<std::size_t>(2 * sequences));
      for (int s = 0; s < sequences; ++s) {
        reqs.push_back(ctx.irecv(partner, bytes, s));
      }
      for (int s = 0; s < sequences; ++s) {
        reqs.push_back(ctx.isend(partner, bytes, s));
      }
      ctx.waitall(reqs);
      break;
    }
  }
}

}  // namespace

ImbSample run_imb(const machine::Machine& m, ImbBenchmark benchmark,
                  int ranks, Bytes bytes, int repetitions, int sequences,
                  bool near_pairs) {
  SWAPP_REQUIRE(ranks >= 2, "IMB needs at least two ranks");
  SWAPP_REQUIRE(repetitions >= 1, "IMB needs at least one repetition");
  SWAPP_REQUIRE(sequences >= 1, "multi-Sendrecv needs sequences >= 1");

  mpi::World world(m, ranks,
                   mpi::World::Options{.app_name = to_string(benchmark)});
  Seconds measured = 0.0;
  constexpr int kWarmup = 2;
  world.run([&](mpi::RankCtx& ctx) {
    for (int i = 0; i < kWarmup; ++i) {
      iteration(ctx, benchmark, bytes, sequences, near_pairs);
    }
    ctx.barrier();
    const Seconds t0 = ctx.now();
    for (int i = 0; i < repetitions; ++i) {
      iteration(ctx, benchmark, bytes, sequences, near_pairs);
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      measured = (ctx.now() - t0) / static_cast<double>(repetitions);
    }
  });

  // The closing barrier adds one barrier per measurement window; subtract an
  // estimate so pure-pattern time is reported (IMB does the same bookkeeping
  // by timing inside the loop).
  return ImbSample{.benchmark = benchmark,
                   .ranks = ranks,
                   .bytes = bytes,
                   .sequences = sequences,
                   .time = measured};
}

const std::vector<Bytes>& default_message_sizes() {
  static const std::vector<Bytes> kSizes = {64,     512,     4_KiB,
                                            32_KiB, 256_KiB, 2_MiB};
  return kSizes;
}

const std::vector<int>& default_core_counts() {
  static const std::vector<int> kCores = {16, 32, 64, 128};
  return kCores;
}

Seconds ImbDatabase::lookup(mpi::Routine routine, Bytes bytes,
                            int ranks) const {
  const auto it = tables.find(routine);
  if (it == tables.end()) {
    throw NotFound("no IMB table for " + mpi::to_string(routine) + " on " +
                   machine_name);
  }
  return it->second.lookup(ranks, static_cast<double>(bytes));
}

namespace {

Seconds eq1_time(const CoreSizeTable& x1, const CoreSizeTable& x2,
                 double in_flight, double bytes, int ranks) {
  const Seconds t1 = x1.lookup(ranks, bytes);
  const Seconds t2 = x2.lookup(ranks, bytes);
  // Eq. 1 with two measurements: T(x) = lib + x · flight.
  const Seconds flight = std::max(t2 - t1, 0.0);
  const Seconds lib = std::max(t1 - flight, 0.0);
  return lib + std::max(1.0, in_flight) * flight;
}

}  // namespace

Seconds ImbDatabase::multi_sendrecv_time(double in_flight, Bytes bytes,
                                         int ranks,
                                         double intra_fraction) const {
  const double b = static_cast<double>(bytes);
  const Seconds inter =
      eq1_time(multi_sendrecv_x1, multi_sendrecv_x2, in_flight, b, ranks);
  if (intra_fraction <= 0.0 || multi_sendrecv_near_x1.empty()) return inter;
  const Seconds intra = eq1_time(multi_sendrecv_near_x1,
                                 multi_sendrecv_near_x2, in_flight, b, ranks);
  const double f = std::min(intra_fraction, 1.0);
  return f * intra + (1.0 - f) * inter;
}

double ImbDatabase::intra_node_fraction(double rank_distance) const {
  // Block placement: a peer at rank distance d shares the node with
  // probability ≈ max(0, 1 − d/P) for P cores per node.
  if (cores_per_node <= 1) return 0.0;
  return std::max(0.0,
                  1.0 - rank_distance / static_cast<double>(cores_per_node));
}

namespace {

/// Sweeps one core count; the per-count fragments are independent, so
/// `measure_database` fans them out over the thread pool and merges in
/// input order (samples land on disjoint (cores, bytes) keys, so the merged
/// tables are identical to a serial sweep for every thread count).
ImbDatabase measure_core_count(const machine::Machine& m, int c,
                               const std::vector<Bytes>& sizes) {
  ImbDatabase db;
  db.machine_name = m.name;
  db.cores_per_node = m.cores_per_node;

  const auto add = [&](mpi::Routine routine, ImbBenchmark bench, int ranks,
                       Bytes bytes) {
    const ImbSample s = run_imb(m, bench, ranks, bytes);
    db.tables[routine].insert(ranks, static_cast<double>(bytes), s.time);
  };

  {
    SWAPP_REQUIRE(c <= m.total_cores,
                  "core count exceeds installation size of " + m.name);
    for (const Bytes s : sizes) {
      // Blocking p2p parameters: one-way PingPong prices Send/Recv, the ring
      // pattern prices Sendrecv.
      const ImbSample pp = run_imb(m, ImbBenchmark::kPingPong, c, s);
      db.tables[mpi::Routine::kSend].insert(c, static_cast<double>(s),
                                            pp.time / 2.0);
      db.tables[mpi::Routine::kRecv].insert(c, static_cast<double>(s),
                                            pp.time / 2.0);
      add(mpi::Routine::kSendrecv, ImbBenchmark::kSendrecv, c, s);

      // Collectives.
      add(mpi::Routine::kBcast, ImbBenchmark::kBcast, c, s);
      add(mpi::Routine::kReduce, ImbBenchmark::kReduce, c, s);
      add(mpi::Routine::kAllreduce, ImbBenchmark::kAllreduce, c, s);
      add(mpi::Routine::kAllgather, ImbBenchmark::kAllgather, c, s);
      add(mpi::Routine::kAlltoall, ImbBenchmark::kAlltoall, c, s);

      // multi-Sendrecv at x = 1 and x = 2 (Eq. 1 calibration), for both the
      // inter-node and intra-node pairings.
      const ImbSample x1 =
          run_imb(m, ImbBenchmark::kMultiSendrecv, c, s, 16, 1);
      const ImbSample x2 =
          run_imb(m, ImbBenchmark::kMultiSendrecv, c, s, 16, 2);
      db.multi_sendrecv_x1.insert(c, static_cast<double>(s), x1.time);
      db.multi_sendrecv_x2.insert(c, static_cast<double>(s), x2.time);
      const ImbSample n1 =
          run_imb(m, ImbBenchmark::kMultiSendrecv, c, s, 16, 1, true);
      const ImbSample n2 =
          run_imb(m, ImbBenchmark::kMultiSendrecv, c, s, 16, 2, true);
      db.multi_sendrecv_near_x1.insert(c, static_cast<double>(s), n1.time);
      db.multi_sendrecv_near_x2.insert(c, static_cast<double>(s), n2.time);
    }
    // Barrier is size-independent; record it at a nominal 8 bytes.
    const ImbSample bar = run_imb(m, ImbBenchmark::kBarrier, c, 8);
    db.tables[mpi::Routine::kBarrier].insert(c, 8.0, bar.time);
  }
  return db;
}

void merge_table(CoreSizeTable& into, const CoreSizeTable& from) {
  for (const CoreSizeTable::Sample& s : from.samples()) {
    into.insert(s.cores, s.bytes, s.seconds);
  }
}

}  // namespace

ImbDatabase measure_database(const machine::Machine& m,
                             const std::vector<int>& core_counts,
                             const std::vector<Bytes>& sizes) {
  const std::vector<ImbDatabase> fragments =
      parallel_map(core_counts, [&](const int c) {
        return measure_core_count(m, c, sizes);
      });

  ImbDatabase db;
  db.machine_name = m.name;
  db.cores_per_node = m.cores_per_node;
  for (const ImbDatabase& fragment : fragments) {
    for (const auto& [routine, table] : fragment.tables) {
      merge_table(db.tables[routine], table);
    }
    merge_table(db.multi_sendrecv_x1, fragment.multi_sendrecv_x1);
    merge_table(db.multi_sendrecv_x2, fragment.multi_sendrecv_x2);
    merge_table(db.multi_sendrecv_near_x1, fragment.multi_sendrecv_near_x1);
    merge_table(db.multi_sendrecv_near_x2, fragment.multi_sendrecv_near_x2);
  }
  return db;
}

ImbDatabase measure_database(const machine::Machine& m) {
  return measure_database(m, default_core_counts(), default_message_sizes());
}

}  // namespace swapp::imb
