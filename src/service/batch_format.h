// The "swapp-batch" v1 request document, as one shared format.
//
// A batch of projection requests is described by an io/record document whose
// rows are
//
//   request "<BT|SP|LU/C|D or file:PATH>" "<target machine>" <tasks>
//           [<threads> [<reference>]]
//
// The same document travels three paths: `swapp batch` reads it from a file,
// `swapp request` reads it from a file and forwards it over the server
// socket, and `swapp serve` decodes it from a request frame.  Keeping the
// parse/serialise pair here (instead of in the CLI) is what makes the wire
// payload and the file format one thing — a server batch is byte-for-byte a
// batch file.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "service/planner.h"

namespace swapp::service {

/// One `request` row of a "swapp-batch" v1 document.
struct BatchRow {
  std::string app;     ///< "BT|SP|LU/C|D" or "file:PATH"
  std::string target;  ///< machine model name
  int tasks = 0;
  int threads = 1;
  /// > 0 runs the GA surrogate search once at this task count and rescales
  /// it to every other count of the same (app, target) group.
  int reference = 0;
};

/// Reads a "swapp-batch" v1 document.  Throws InvalidArgument on a malformed
/// header, an unknown row tag, a short row, or an empty document.
std::vector<BatchRow> read_batch_requests(std::istream& in);

/// Writes rows as a "swapp-batch" v1 document (inverse of
/// `read_batch_requests`; always emits all five fields).
void write_batch_requests(std::ostream& out, const std::vector<BatchRow>& rows);

/// The engine-facing request for one row.
ServiceRequest to_service_request(const BatchRow& row);

}  // namespace swapp::service
