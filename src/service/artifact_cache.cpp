#include "service/artifact_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <exception>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "io/persist.h"
#include "io/record.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

namespace swapp::service {

std::string to_string(ArtifactSource source) {
  switch (source) {
    case ArtifactSource::kComputed: return "computed";
    case ArtifactSource::kMemory: return "memory cache";
    case ArtifactSource::kDisk: return "disk cache";
  }
  throw InternalError("unknown ArtifactSource");
}

std::uint64_t fingerprint(const std::string& canonical) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (const unsigned char c : canonical) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string fingerprint_hex(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::string describe_machine(const machine::Machine& m) {
  std::ostringstream os;
  {
    io::RecordWriter w(os, "swapp-machine-id", 1);
    w.row("machine")
        .field(m.name)
        .field(m.cores_per_node)
        .field(m.total_cores)
        .field(m.processor.frequency_ghz)
        .field(m.processor.smt_ways)
        .field(m.os_jitter);
  }
  return os.str();
}

std::string describe_imb_inputs(const machine::Machine& m,
                                const std::vector<int>& core_counts,
                                const std::vector<Bytes>& sizes) {
  std::ostringstream os;
  os << describe_machine(m);
  {
    io::RecordWriter w(os, "swapp-imb-inputs", 1);
    w.row("cores");
    for (const int c : core_counts) w.field(c);
    w.row("sizes");
    for (const Bytes s : sizes) w.field(static_cast<std::uint64_t>(s));
  }
  return os.str();
}

std::string describe_spec_inputs(const machine::Machine& base,
                                 const std::vector<machine::Machine>& targets,
                                 const std::vector<int>& task_counts) {
  std::ostringstream os;
  os << describe_machine(base);
  for (const machine::Machine& t : targets) os << describe_machine(t);
  {
    io::RecordWriter w(os, "swapp-spec-inputs", 1);
    w.row("tasks");
    for (const int c : task_counts) w.field(c);
  }
  return os.str();
}

std::string describe_app_inputs(const std::string& app_name,
                                const machine::Machine& base, int threads,
                                const std::vector<int>& mpi_counts,
                                const std::vector<int>& counter_counts) {
  std::ostringstream os;
  os << describe_machine(base);
  {
    io::RecordWriter w(os, "swapp-app-inputs", 1);
    w.row("app").field(app_name).field(threads);
    w.row("mpi-counts");
    for (const int c : mpi_counts) w.field(c);
    w.row("counter-counts");
    for (const int c : counter_counts) w.field(c);
  }
  return os.str();
}

namespace {

/// One artifact kind: a bounded memory tier plus (for persistent kinds) a
/// load/save pair from io/persist.  Eviction is cost-aware: each entry
/// remembers what it cost to produce this time (disk load or recompute) and
/// its disk footprint, and the victim is the entry with the lowest
/// cost-per-byte — the one that is cheapest to bring back relative to the
/// memory it holds.  Memory-only kinds have no disk footprint, so their
/// score degenerates to the raw recompute cost, which is exactly the right
/// ordering for them.  Ties (and the uniform-cost case) fall back to LRU.
template <typename T>
struct Store {
  using Saver = void (*)(const std::filesystem::path&, const T&);
  using Loader = T (*)(const std::filesystem::path&);

  std::string kind;
  Saver save = nullptr;  ///< null for memory-only kinds
  Loader load = nullptr;

  struct Entry {
    std::shared_ptr<const T> value;
    double cost_us = 0.0;      ///< observed load/recompute cost
    std::uintmax_t bytes = 1;  ///< disk footprint; 1 for memory-only kinds
    double touched_us = 0.0;   ///< last hit/insert time (age-decay input)
  };
  std::map<std::uint64_t, Entry> entries;
  std::list<std::uint64_t> recency;  ///< front = most recently used
};

template <typename T>
void touch(Store<T>& store, std::uint64_t key, double now_us) {
  store.recency.remove(key);
  store.recency.push_front(key);
  const auto it = store.entries.find(key);
  if (it != store.entries.end()) it->second.touched_us = now_us;
}

/// Picks the eviction victim: lowest age-decayed cost-per-byte, walking the
/// recency list back-to-front so the least recently used entry wins ties
/// (strict `<` keeps the first candidate seen — the older one — on equal
/// scores).  The decay halves an entry's score per `half_life_us` without a
/// hit, so a once-expensive artifact a long-lived daemon never touches again
/// eventually loses to entries that stay warm; 0 disables decay.
template <typename T>
std::uint64_t pick_victim(const Store<T>& store, double now_us,
                          double half_life_us) {
  const auto score_of = [&](std::uint64_t key) {
    const auto& e = store.entries.at(key);
    double score = e.cost_us / static_cast<double>(e.bytes == 0 ? 1 : e.bytes);
    if (half_life_us > 0.0) {
      const double age_us = std::max(0.0, now_us - e.touched_us);
      score *= std::exp2(-age_us / half_life_us);
    }
    return score;
  };
  std::uint64_t victim = store.recency.back();
  double best = score_of(victim);
  for (auto it = std::next(store.recency.rbegin());
       it != store.recency.rend(); ++it) {
    const double s = score_of(*it);
    if (s < best) {
      best = s;
      victim = *it;
    }
  }
  return victim;
}

/// RAII flock over `path`: serialises the compute-and-save window of one
/// artifact key across processes sharing a cache directory.  Lock files are
/// tiny, live beside the artifacts (`.lock` extension, so the disk-cap
/// enforcement never evicts them), and are left in place — flock state dies
/// with the fd, not the file.  Failure to create or lock degrades to the
/// old unlocked behaviour (duplicated work, never corruption: artifact
/// writes stay atomic via write-then-rename).
class FileLock {
 public:
  /// Returns true (and records whether the lock was contended in `waited`)
  /// when the exclusive lock is held on return.
  bool acquire(const std::filesystem::path& path, bool* waited) {
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) return false;
    if (::flock(fd_, LOCK_EX | LOCK_NB) == 0) return true;
    if (waited) *waited = true;
    while (::flock(fd_, LOCK_EX) != 0) {
      if (errno != EINTR) {
        ::close(fd_);
        fd_ = -1;
        return false;
      }
    }
    return true;
  }
  ~FileLock() {
    if (fd_ >= 0) ::close(fd_);  // releases the flock
  }

 private:
  int fd_ = -1;
};

}  // namespace

struct ArtifactCache::Impl {
  std::size_t capacity = 16;
  std::uintmax_t max_disk_bytes = 0;  ///< 0 = unbounded disk tier
  double half_life_us = 1800.0 * 1e6;  ///< eviction-score age decay
  mutable std::mutex mutex;
  CacheStats stats;

  Store<imb::ImbDatabase> imb{"imb", &io::save_imb_database,
                              &io::load_imb_database};
  Store<core::SpecLibrary> spec{"spec", &io::save_spec_library,
                                &io::load_spec_library};
  Store<core::AppBaseData> app{"app", &io::save_app_data, &io::load_app_data};
  Store<core::SpecIndex> index{"spec-index"};
  Store<core::ComputeProjection> surrogate{"surrogate",
                                           &io::save_compute_projection,
                                           &io::load_compute_projection};

  template <typename T>
  std::filesystem::path path_of(const Store<T>& store,
                                const std::filesystem::path& dir,
                                std::uint64_t key) const {
    return dir / (store.kind + "-" + fingerprint_hex(key) + ".swapp");
  }

  /// Records how long one cache lookup took, bucketed per artifact kind
  /// ("cache.lookup_us.imb", …).  The handle re-resolves its name on every
  /// construction, which is one locked map probe — negligible next to the
  /// disk/compute work this path fronts, and only paid while metrics are on.
  template <typename T>
  void observe_lookup(const Store<T>& store, double started_us) const {
    if (!obs::metrics_enabled()) return;
    obs::Histogram("cache.lookup_us." + store.kind)
        .observe(obs::trace_now_us() - started_us);
  }

  /// Removes oldest-mtime `.swapp` files until the directory fits
  /// `max_disk_bytes` again, sparing `just_written` (the newest entry; a
  /// single over-cap artifact must still persist to be useful).  Runs
  /// unlocked — concurrent writers may race to remove the same victim, so
  /// only files that actually disappeared are counted.  Returns the number
  /// of evicted files.
  std::size_t enforce_disk_cap(const std::filesystem::path& dir,
                               const std::filesystem::path& just_written)
      const {
    if (max_disk_bytes == 0) return 0;
    struct DiskFile {
      std::filesystem::path path;
      std::filesystem::file_time_type mtime;
      std::uintmax_t size = 0;
    };
    std::vector<DiskFile> files;
    std::uintmax_t total = 0;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (entry.path().extension() != ".swapp") continue;
      DiskFile f;
      f.path = entry.path();
      f.size = std::filesystem::file_size(f.path, ec);
      if (ec) continue;
      f.mtime = std::filesystem::last_write_time(f.path, ec);
      if (ec) continue;
      total += f.size;
      files.push_back(std::move(f));
    }
    if (total <= max_disk_bytes) return 0;
    // Oldest first; ties broken by path so concurrent enforcers agree on
    // the victim order.
    std::sort(files.begin(), files.end(),
              [](const DiskFile& a, const DiskFile& b) {
                return a.mtime != b.mtime ? a.mtime < b.mtime
                                          : a.path < b.path;
              });
    std::size_t evicted = 0;
    for (const DiskFile& f : files) {
      if (total <= max_disk_bytes) break;
      if (f.path == just_written) continue;
      if (std::filesystem::remove(f.path, ec) && !ec) {
        total -= f.size;
        ++evicted;
      }
    }
    return evicted;
  }

  template <typename T>
  std::shared_ptr<const T> get(Store<T>& store,
                               const std::filesystem::path& dir,
                               const std::string& canonical,
                               const std::function<T()>& make,
                               ArtifactSource* source) {
    const double started_us =
        obs::metrics_enabled() ? obs::trace_now_us() : 0.0;
    const std::uint64_t key = fingerprint(canonical);
    {
      std::lock_guard<std::mutex> lock(mutex);
      const auto it = store.entries.find(key);
      if (it != store.entries.end()) {
        ++stats.memory_hits;
        touch(store, key, obs::trace_now_us());
        if (source) *source = ArtifactSource::kMemory;
        SWAPP_COUNT("cache.memory_hits", 1);
        observe_lookup(store, started_us);
        return it->second.value;
      }
    }

    // Miss path runs unlocked: disk loads and make() are slow, and a
    // duplicated computation under a rare same-key in-process race is still
    // the same pure function of the key.  The cost clock runs regardless of
    // whether metrics are enabled: the eviction policy feeds on it.
    std::shared_ptr<const T> value;
    ArtifactSource from = ArtifactSource::kComputed;
    const bool on_disk = store.load != nullptr && !dir.empty();
    bool corrupt = false;
    bool lock_waited = false;
    double cost_us = 0.0;
    std::uintmax_t bytes = 1;
    const auto try_load = [&](const std::filesystem::path& file) {
      std::error_code ec;
      if (!std::filesystem::exists(file, ec)) return;
      const double load_started_us = obs::trace_now_us();
      try {
        value = std::make_shared<const T>(store.load(file));
        from = ArtifactSource::kDisk;
        corrupt = false;
        cost_us = obs::trace_now_us() - load_started_us;
        const std::uintmax_t size = std::filesystem::file_size(file, ec);
        if (!ec && size > 0) bytes = size;
      } catch (const std::exception&) {
        corrupt = true;  // rejected: recompute and overwrite below
      }
    };
    if (on_disk) try_load(path_of(store, dir, key));
    std::size_t disk_evicted = 0;
    if (!value) {
      // The compute-and-save window is serialised across processes by a
      // per-key lock file; whoever loses the race re-probes the disk and
      // usually finds the winner's artifact instead of recomputing it.
      FileLock process_lock;
      bool relock_probe = false;
      if (on_disk) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        const std::filesystem::path lock_path =
            dir / (store.kind + "-" + fingerprint_hex(key) + ".lock");
        relock_probe = process_lock.acquire(lock_path, &lock_waited);
        if (relock_probe && lock_waited) try_load(path_of(store, dir, key));
      }
      if (!value) {
        const double make_started_us = obs::trace_now_us();
        value = std::make_shared<const T>(make());
        cost_us = obs::trace_now_us() - make_started_us;
        if (obs::metrics_enabled()) {
          obs::Histogram("cache.recompute_cost_us." + store.kind)
              .observe(cost_us);
        }
        if (on_disk) {
          std::error_code ec;
          // Write-then-rename so a crashed writer never leaves a torn file
          // under the final name.
          const std::filesystem::path file = path_of(store, dir, key);
          const std::filesystem::path tmp = file.string() + ".tmp";
          try {
            store.save(tmp, *value);
            std::filesystem::rename(tmp, file);
            const std::uintmax_t size = std::filesystem::file_size(file, ec);
            if (!ec && size > 0) bytes = size;
            disk_evicted = enforce_disk_cap(dir, file);
          } catch (const std::exception&) {
            std::filesystem::remove(tmp, ec);  // cache write is best-effort
          }
        }
      }
    }

    std::lock_guard<std::mutex> lock(mutex);
    if (disk_evicted > 0) {
      stats.disk_evictions += disk_evicted;
      SWAPP_COUNT("cache.disk_evictions", disk_evicted);
    }
    if (lock_waited) {
      ++stats.lock_waits;
      SWAPP_COUNT("cache.lock_waits", 1);
    }
    if (corrupt) {
      ++stats.corrupt_files;
      SWAPP_COUNT("cache.corrupt_files", 1);
    }
    if (from == ArtifactSource::kDisk) {
      ++stats.disk_hits;
      SWAPP_COUNT("cache.disk_hits", 1);
    } else {
      ++stats.misses;
      SWAPP_COUNT("cache.misses", 1);
    }
    const double now_us = obs::trace_now_us();
    const auto [it, inserted] = store.entries.emplace(
        key, typename Store<T>::Entry{value, cost_us, bytes, now_us});
    if (!inserted) {
      // Same-key race: another thread inserted first.  Keep its value (ours
      // is identical) but refresh the cost observation.
      it->second.cost_us = cost_us;
      it->second.bytes = bytes;
    }
    touch(store, key, now_us);
    // Grab the winning pointer before evicting: the fresh entry is a legal
    // victim if it is the cheapest per byte, and erasing it invalidates it.
    std::shared_ptr<const T> result = it->second.value;
    while (store.entries.size() > capacity) {
      const std::uint64_t victim = pick_victim(store, now_us, half_life_us);
      store.recency.remove(victim);
      store.entries.erase(victim);
      ++stats.evictions;
      SWAPP_COUNT("cache.evictions", 1);
      if (obs::metrics_enabled()) {
        obs::Counter("cache.evictions." + store.kind).increment();
      }
    }
    if (source) *source = from;
    observe_lookup(store, started_us);
    return result;
  }
};

ArtifactCache::ArtifactCache(std::filesystem::path cache_dir,
                             std::size_t capacity_per_kind,
                             std::uintmax_t max_disk_bytes)
    : cache_dir_(std::move(cache_dir)), impl_(std::make_unique<Impl>()) {
  SWAPP_REQUIRE(capacity_per_kind >= 1, "cache capacity must be >= 1");
  impl_->capacity = capacity_per_kind;
  impl_->max_disk_bytes = max_disk_bytes;
}

ArtifactCache::~ArtifactCache() = default;

std::shared_ptr<const imb::ImbDatabase> ArtifactCache::imb_database(
    const std::string& canonical_inputs,
    const std::function<imb::ImbDatabase()>& make, ArtifactSource* source) {
  return impl_->get(impl_->imb, cache_dir_, canonical_inputs, make, source);
}

std::shared_ptr<const core::SpecLibrary> ArtifactCache::spec_library(
    const std::string& canonical_inputs,
    const std::function<core::SpecLibrary()>& make, ArtifactSource* source) {
  return impl_->get(impl_->spec, cache_dir_, canonical_inputs, make, source);
}

std::shared_ptr<const core::AppBaseData> ArtifactCache::app_data(
    const std::string& canonical_inputs,
    const std::function<core::AppBaseData()>& make, ArtifactSource* source) {
  return impl_->get(impl_->app, cache_dir_, canonical_inputs, make, source);
}

std::shared_ptr<const core::SpecIndex> ArtifactCache::spec_index(
    const std::string& canonical_inputs,
    const std::function<core::SpecIndex()>& make, ArtifactSource* source) {
  return impl_->get(impl_->index, cache_dir_, canonical_inputs, make, source);
}

std::shared_ptr<const core::ComputeProjection>
ArtifactCache::surrogate_projection(
    const std::string& canonical_inputs,
    const std::function<core::ComputeProjection()>& make,
    ArtifactSource* source) {
  return impl_->get(impl_->surrogate, cache_dir_, canonical_inputs, make,
                    source);
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

void ArtifactCache::set_eviction_half_life(Seconds half_life) {
  SWAPP_REQUIRE(half_life >= 0.0, "eviction half-life must be >= 0");
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->half_life_us = half_life * 1e6;
}

void ArtifactCache::debug_age_entries(Seconds seconds) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const double delta_us = seconds * 1e6;
  const auto age = [delta_us](auto& store) {
    for (auto& [key, entry] : store.entries) entry.touched_us -= delta_us;
  };
  age(impl_->imb);
  age(impl_->spec);
  age(impl_->app);
  age(impl_->index);
  age(impl_->surrogate);
}

}  // namespace swapp::service
