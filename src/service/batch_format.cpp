#include "service/batch_format.h"

#include <istream>
#include <ostream>

#include "io/record.h"
#include "support/error.h"

namespace swapp::service {

std::vector<BatchRow> read_batch_requests(std::istream& in) {
  io::RecordReader reader(in, "swapp-batch", 1);
  io::Record rec;
  std::vector<BatchRow> rows;
  while (reader.next(rec)) {
    if (rec.tag != "request") {
      throw InvalidArgument("unknown record in batch document: " + rec.tag);
    }
    if (rec.fields.size() < 3) {
      throw InvalidArgument("request row needs: app, target, tasks");
    }
    BatchRow row;
    row.app = rec.str(0);
    row.target = rec.str(1);
    row.tasks = static_cast<int>(rec.integer(2));
    if (rec.fields.size() > 3) row.threads = static_cast<int>(rec.integer(3));
    if (rec.fields.size() > 4) {
      row.reference = static_cast<int>(rec.integer(4));
    }
    rows.push_back(row);
  }
  if (rows.empty()) throw InvalidArgument("batch document has no requests");
  return rows;
}

void write_batch_requests(std::ostream& out,
                          const std::vector<BatchRow>& rows) {
  io::RecordWriter writer(out, "swapp-batch", 1);
  for (const BatchRow& row : rows) {
    writer.row("request")
        .field(row.app)
        .field(row.target)
        .field(row.tasks)
        .field(row.threads)
        .field(row.reference);
  }
}

ServiceRequest to_service_request(const BatchRow& row) {
  ServiceRequest request;
  request.app = row.app;
  request.target = row.target;
  request.cores = row.tasks;
  request.threads = row.threads;
  if (row.reference > 0) {
    request.options.compute.surrogate_reference_cores = row.reference;
  }
  return request;
}

}  // namespace swapp::service
