// Batch projection service: the collect-once / project-many workflow as one
// subsystem.
//
// A `ProjectionService` owns the machines, the artifact cache, and the
// collectors that can (re)build each input artifact.  `run` takes a batch of
// `ServiceRequest` rows, plans them (planner.h), acquires the shared inputs
// through the content-addressed cache (artifact_cache.h) — so a warm cache
// directory satisfies a whole batch with zero simulation — and projects the
// batch through `Projector::project_many`, whose results are byte-identical
// to N sequential `Projector::project` calls at every thread count.
//
// The service depends only on core/io/imb/machine: application profiling and
// SPEC-library collection are injected as functions, so callers (CLI, Lab)
// decide where those come from without this layer linking the simulator
// harness.
#pragma once

#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/projector.h"
#include "machine/machine.h"
#include "service/artifact_cache.h"
#include "service/planner.h"

namespace swapp::service {

struct ServiceConfig {
  /// Artifact cache directory; empty keeps the cache in memory only.
  std::filesystem::path cache_dir;
  std::size_t cache_capacity = 16;
  /// Byte cap for the disk tier (0 = unbounded); see ArtifactCache.
  std::uintmax_t cache_dir_max_bytes = 0;
  /// When set, the service records into this cache instead of owning one
  /// (the cache_* fields above are then ignored).  A long-running owner —
  /// the projection server — shares one resident cache across the
  /// short-lived services it builds per coalesced batch, making that owner
  /// the single process touching the cache directory.
  std::shared_ptr<ArtifactCache> shared_cache;
  /// Task-count grid for the SPEC library; empty derives the grid from each
  /// batch's requests.  Fixing it keeps the library artifact shared across
  /// batches with different request mixes.
  std::vector<int> spec_task_counts;
};

class ProjectionService {
 public:
  using SpecCollector = std::function<core::SpecLibrary(
      const machine::Machine& base,
      const std::vector<machine::Machine>& targets,
      const std::vector<int>& task_counts)>;
  using ImbCollector =
      std::function<imb::ImbDatabase(const machine::Machine&)>;
  using AppCollector = std::function<core::AppBaseData()>;

  /// `targets` are the candidate machines this service projects onto (the
  /// SPEC library and one IMB database are collected for all of them).
  ProjectionService(machine::Machine base,
                    std::vector<machine::Machine> targets,
                    ServiceConfig config = {});

  /// Collector for the SPEC-style library; must be set before `run` (the
  /// service itself does not link a benchmark runner).
  void set_spec_collector(SpecCollector collect);
  /// Collector for per-machine IMB databases; defaults to
  /// `imb::measure_database`.
  void set_imb_collector(ImbCollector collect);

  /// Registers an application by name.  `canonical_inputs` is the cache key
  /// material (see describe_app_inputs); `collect` produces the base profile
  /// on a cache miss.
  void add_app(const std::string& name, std::string canonical_inputs,
               AppCollector collect);
  /// Registers an already-collected profile from a file (loaded eagerly;
  /// never re-simulated, never re-persisted).
  void add_app_file(const std::string& name,
                    const std::filesystem::path& path);
  bool has_app(const std::string& name) const;

  /// One acquired artifact and the tier that satisfied it.
  struct ArtifactNote {
    std::string name;
    ArtifactSource source = ArtifactSource::kComputed;
  };

  /// Wall-clock time one phase of `run` took.  Always measured (one clock
  /// read per phase), independent of the obs runtime switches.
  struct PhaseTime {
    std::string phase;
    double seconds = 0.0;
  };

  struct BatchReport {
    /// results[i] corresponds to requests[i] (input order).
    std::vector<core::ProjectionResult> results;
    BatchPlan plan;
    std::vector<ArtifactNote> artifacts;  ///< acquisition order
    CacheStats cache;                     ///< cumulative cache counters
    /// Phase breakdown of this run in execution order: plan, spec-library,
    /// imb-databases, app-profiles, projection.
    std::vector<PhaseTime> phases;
    /// True iff no artifact in this batch had to be computed (every input
    /// came from the memory or disk tier — a fully warm run).
    bool warm() const;
  };

  /// Plans, acquires artifacts, projects.  Throws NotFound for requests
  /// naming unregistered apps or unconfigured targets.
  BatchReport run(const std::vector<ServiceRequest>& requests);

  /// Several independent batches planned and executed as one run, so the
  /// planner's dedup (shared spec indexes, shared GA searches) works across
  /// them — the server's coalescing entry point, where each slice is one
  /// client's batch.
  struct CoalescedReport {
    BatchReport combined;  ///< the one planned run over every slice
    /// slices[i] holds the results for batches[i], in that batch's order.
    std::vector<std::vector<core::ProjectionResult>> slices;
  };
  CoalescedReport run_coalesced(
      const std::vector<std::vector<ServiceRequest>>& batches);

  ArtifactCache& cache() noexcept { return *cache_; }
  const machine::Machine& base() const noexcept { return base_; }

 private:
  struct AppEntry {
    std::string canonical;
    AppCollector collect;
    std::shared_ptr<const core::AppBaseData> fixed;  ///< file-backed apps
  };

  machine::Machine base_;
  std::vector<machine::Machine> targets_;
  std::map<std::string, machine::Machine> targets_by_name_;
  ServiceConfig config_;
  std::shared_ptr<ArtifactCache> cache_;
  SpecCollector collect_spec_;
  ImbCollector collect_imb_;
  std::map<std::string, AppEntry> apps_;
};

}  // namespace swapp::service
