// Request planner for batched projections.
//
// A batch of projection requests shares most of its expensive inputs: one
// SPEC library and one IMB database per machine serve every request, one
// indexed spec view serves every request that lands on the same (target,
// occupancy) pair, and — when `surrogate_reference_cores` is set — one GA
// surrogate search serves every core count of the same (app, target) group.
// `plan_batch` makes that sharing explicit before any work runs: it dedups
// the artifact set, so the service can report exactly what a batch will
// build and reuse, and tests can assert the dedup independently of
// execution.  The engine (`Projector::project_many`) re-derives the same
// plan internally; this one is the service's reporting and sizing view.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/projector.h"
#include "machine/machine.h"

namespace swapp::service {

/// One row of a batch, by registered-artifact name (the service resolves
/// `app` to collected base data before projecting).
struct ServiceRequest {
  std::string app;
  std::string target;
  int cores = 0;
  int threads = 1;  ///< OpenMP threads per task; must match the app profile
  core::ProjectionOptions options;
};

/// One shared node of the plan and how many requests consume it.
struct PlannedArtifact {
  std::string kind;  ///< "spec-index" | "surrogate-search"
  std::string key;
  std::size_t uses = 0;
};

struct BatchPlan {
  std::size_t requests = 0;
  std::vector<std::string> apps;     ///< distinct, first-appearance order
  std::vector<std::string> targets;  ///< distinct, first-appearance order
  /// Ascending union of the task-count demands (cores × threads, plus the
  /// surrogate reference demands) — what the SPEC library must cover.
  std::vector<int> task_counts;
  std::vector<PlannedArtifact> artifacts;  ///< first-appearance order

  /// GA surrogate searches the batch will run after dedup (shared searches
  /// count once; requests outside any shared group count individually).
  std::size_t searches = 0;
  /// Searches N independent `project` calls would have run.
  std::size_t naive_searches = 0;

  std::size_t artifact_count(const std::string& kind) const;
  /// Human-readable plan summary (one line per fact).
  std::string describe() const;
};

/// Plans the batch against the machines it will run on (`targets` must hold
/// every machine named by a request; throws NotFound otherwise).
BatchPlan plan_batch(const std::vector<ServiceRequest>& requests,
                     const machine::Machine& base,
                     const std::map<std::string, machine::Machine>& targets);

}  // namespace swapp::service
