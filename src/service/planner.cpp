#include "service/planner.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

namespace swapp::service {

std::size_t BatchPlan::artifact_count(const std::string& kind) const {
  std::size_t n = 0;
  for (const PlannedArtifact& a : artifacts) n += a.kind == kind;
  return n;
}

std::string BatchPlan::describe() const {
  std::ostringstream os;
  os << "batch plan: " << requests << " request(s), " << apps.size()
     << " app(s), " << targets.size() << " target(s)\n";
  os << "  spec-library task counts:";
  for (const int c : task_counts) os << ' ' << c;
  os << "\n  shared artifacts: " << artifact_count("spec-index")
     << " spec index(es), " << artifact_count("surrogate-search")
     << " shared surrogate search(es)\n";
  os << "  GA searches: " << searches << " (naive: " << naive_searches
     << ")\n";
  return os.str();
}

BatchPlan plan_batch(const std::vector<ServiceRequest>& requests,
                     const machine::Machine& base,
                     const std::map<std::string, machine::Machine>& targets) {
  SWAPP_SPAN("planner.plan_batch");
  BatchPlan plan;
  plan.requests = requests.size();

  std::set<std::string> seen_apps;
  std::set<std::string> seen_targets;
  std::set<int> demands;
  std::map<std::string, std::size_t> artifact_slots;

  const auto note_artifact = [&](const std::string& kind,
                                 const std::string& key) {
    const auto [it, inserted] =
        artifact_slots.emplace(kind + "\n" + key, plan.artifacts.size());
    if (inserted) plan.artifacts.push_back(PlannedArtifact{kind, key, 0});
    ++plan.artifacts[it->second].uses;
    return inserted;
  };

  for (const ServiceRequest& r : requests) {
    SWAPP_REQUIRE(r.cores >= 1, "request needs cores >= 1");
    SWAPP_REQUIRE(r.threads >= 1, "request needs threads >= 1");
    const auto target_it = targets.find(r.target);
    if (target_it == targets.end()) {
      throw NotFound("batch target not configured: " + r.target);
    }
    if (seen_apps.insert(r.app).second) plan.apps.push_back(r.app);
    if (seen_targets.insert(r.target).second) plan.targets.push_back(r.target);

    const int reference = r.options.compute.surrogate_reference_cores;
    const int search_ck = reference > 0 ? reference : r.cores;
    demands.insert(r.cores * r.threads);
    demands.insert(search_ck * r.threads);

    // Mirror of the engine's planning keys: the indexed view is shared per
    // (target, occupancy pair); the search per (app, target, reference,
    // options) group when a reference count pins it.
    const int demand = search_ck * r.threads;
    const int base_occ =
        core::SpecLibrary::occupancy_for(demand, base.cores_per_node);
    const int target_occ = core::SpecLibrary::occupancy_for(
        demand, target_it->second.cores_per_node);
    note_artifact("spec-index",
                  core::SpecIndex::key_of(r.target, base_occ, target_occ));

    ++plan.naive_searches;
    if (reference > 0) {
      const core::ComputeProjectionOptions& c = r.options.compute;
      std::ostringstream key;
      key.precision(17);
      key << r.app << '|' << r.target << '|' << reference << '|' << r.threads
          << '|' << c.ga.population << '|' << c.ga.generations << '|'
          << c.ga.restarts << '|' << c.ga.max_terms << '|'
          << c.ga.runtime_penalty << '|' << c.ga.seed << '|'
          << c.ga.stagnation_limit << '|' << c.use_acsm << '|'
          << c.use_rank_adjustment;
      if (note_artifact("surrogate-search", key.str())) ++plan.searches;
    } else {
      ++plan.searches;
    }
  }

  plan.task_counts.assign(demands.begin(), demands.end());
  SWAPP_COUNT("planner.requests", plan.requests);
  SWAPP_COUNT("planner.searches", plan.searches);
  SWAPP_COUNT("planner.naive_searches", plan.naive_searches);
  return plan;
}

}  // namespace swapp::service
