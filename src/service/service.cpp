#include "service/service.h"

#include <chrono>
#include <utility>

#include "io/persist.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/parallel.h"

namespace swapp::service {

bool ProjectionService::BatchReport::warm() const {
  for (const ArtifactNote& note : artifacts) {
    if (note.source == ArtifactSource::kComputed) return false;
  }
  return true;
}

ProjectionService::ProjectionService(machine::Machine base,
                                     std::vector<machine::Machine> targets,
                                     ServiceConfig config)
    : base_(std::move(base)),
      targets_(std::move(targets)),
      config_(std::move(config)),
      cache_(config_.shared_cache
                 ? config_.shared_cache
                 : std::make_shared<ArtifactCache>(
                       config_.cache_dir, config_.cache_capacity,
                       config_.cache_dir_max_bytes)),
      collect_imb_([](const machine::Machine& m) {
        return imb::measure_database(m);
      }) {
  SWAPP_REQUIRE(!targets_.empty(), "service needs at least one target");
  for (const machine::Machine& t : targets_) {
    targets_by_name_.emplace(t.name, t);
  }
}

void ProjectionService::set_spec_collector(SpecCollector collect) {
  collect_spec_ = std::move(collect);
}

void ProjectionService::set_imb_collector(ImbCollector collect) {
  SWAPP_REQUIRE(collect != nullptr, "IMB collector must be callable");
  collect_imb_ = std::move(collect);
}

void ProjectionService::add_app(const std::string& name,
                                std::string canonical_inputs,
                                AppCollector collect) {
  SWAPP_REQUIRE(collect != nullptr, "app collector must be callable");
  apps_[name] =
      AppEntry{std::move(canonical_inputs), std::move(collect), nullptr};
}

void ProjectionService::add_app_file(const std::string& name,
                                     const std::filesystem::path& path) {
  apps_[name] = AppEntry{
      {}, nullptr, std::make_shared<const core::AppBaseData>(
                       io::load_app_data(path))};
}

bool ProjectionService::has_app(const std::string& name) const {
  return apps_.find(name) != apps_.end();
}

ProjectionService::BatchReport ProjectionService::run(
    const std::vector<ServiceRequest>& requests) {
  SWAPP_SPAN("service.run");
  SWAPP_COUNT("service.batches", 1);
  using Clock = std::chrono::steady_clock;
  Clock::time_point phase_start = Clock::now();
  BatchReport report;
  const auto end_phase = [&](const char* phase) {
    const Clock::time_point now = Clock::now();
    report.phases.push_back(PhaseTime{
        phase, std::chrono::duration<double>(now - phase_start).count()});
    phase_start = now;
  };

  report.plan = plan_batch(requests, base_, targets_by_name_);
  for (const std::string& app : report.plan.apps) {
    if (!has_app(app)) throw NotFound("app not registered: " + app);
  }
  end_phase("plan");

  // --- Acquire shared inputs through the cache -----------------------------
  const std::vector<int>& task_counts = config_.spec_task_counts.empty()
                                            ? report.plan.task_counts
                                            : config_.spec_task_counts;
  SWAPP_REQUIRE(collect_spec_ != nullptr,
                "spec collector not set (see set_spec_collector)");
  std::shared_ptr<const core::SpecLibrary> spec;
  {
    SWAPP_SPAN("service.spec_library");
    ArtifactSource source = ArtifactSource::kComputed;
    spec = cache_->spec_library(
        describe_spec_inputs(base_, targets_, task_counts),
        [&] { return collect_spec_(base_, targets_, task_counts); }, &source);
    report.artifacts.push_back(ArtifactNote{"spec library", source});
  }
  end_phase("spec-library");

  // IMB databases, base first then targets in configuration order.  Each
  // fan-out item is one machine; the measurement inside is itself parallel
  // when this loop runs serially.
  std::vector<const machine::Machine*> machines;
  machines.push_back(&base_);
  for (const machine::Machine& t : targets_) machines.push_back(&t);
  struct ImbGet {
    std::shared_ptr<const imb::ImbDatabase> db;
    ArtifactSource source = ArtifactSource::kComputed;
  };
  std::vector<ImbGet> imb_dbs;
  {
    SWAPP_SPAN("service.imb_databases");
    imb_dbs = parallel_map(machines, [&](const machine::Machine* m) {
      ImbGet got;
      got.db = cache_->imb_database(
          describe_imb_inputs(*m, imb::default_core_counts(),
                              imb::default_message_sizes()),
          [&] { return collect_imb_(*m); }, &got.source);
      return got;
    });
  }
  for (std::size_t i = 0; i < machines.size(); ++i) {
    report.artifacts.push_back(
        ArtifactNote{"IMB database (" + machines[i]->name + ")",
                     imb_dbs[i].source});
  }
  end_phase("imb-databases");

  // Application base profiles, in plan (first-appearance) order.
  struct AppGet {
    std::shared_ptr<const core::AppBaseData> data;
    ArtifactSource source = ArtifactSource::kComputed;
  };
  std::vector<AppGet> app_gets;
  {
    SWAPP_SPAN("service.app_profiles");
    app_gets = parallel_map(report.plan.apps, [&](const std::string& name) {
      const AppEntry& entry = apps_.at(name);
      AppGet got;
      if (entry.fixed) {
        got.data = entry.fixed;
        got.source = ArtifactSource::kMemory;
        return got;
      }
      got.data = cache_->app_data(entry.canonical, entry.collect,
                                 &got.source);
      return got;
    });
  }
  std::map<std::string, std::shared_ptr<const core::AppBaseData>> app_data;
  for (std::size_t i = 0; i < report.plan.apps.size(); ++i) {
    report.artifacts.push_back(ArtifactNote{
        "app profile (" + report.plan.apps[i] + ")", app_gets[i].source});
    app_data.emplace(report.plan.apps[i], app_gets[i].data);
  }
  end_phase("app-profiles");

  // --- Project the batch ---------------------------------------------------
  core::Projector projector(base_, *spec, *imb_dbs.front().db);
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    projector.add_target(targets_[i].name, *imb_dbs[i + 1].db);
  }

  std::vector<core::ProjectionRequest> engine_requests;
  engine_requests.reserve(requests.size());
  for (const ServiceRequest& r : requests) {
    const core::AppBaseData& data = *app_data.at(r.app);
    SWAPP_REQUIRE(data.threads_per_rank == r.threads,
                  "request thread count does not match the profile of " +
                      r.app);
    engine_requests.push_back(
        core::ProjectionRequest{&data, r.target, r.cores, r.options});
  }
  report.results = projector.project_many(engine_requests);
  end_phase("projection");
  report.cache = cache_->stats();
  // Surface the phase breakdown in the metrics snapshot ("service.phase_s.
  // <phase>" gauges for the latest run, "service.phase_us.<phase>" histograms
  // across runs), so machine-readable exports (--metrics, the server's stats
  // endpoint) carry per-phase wall-clock without parsing stderr.
  if (obs::metrics_enabled()) {
    for (const PhaseTime& p : report.phases) {
      obs::Gauge("service.phase_s." + p.phase).set(p.seconds);
      obs::Histogram("service.phase_us." + p.phase).observe(p.seconds * 1e6);
    }
  }
  return report;
}

ProjectionService::CoalescedReport ProjectionService::run_coalesced(
    const std::vector<std::vector<ServiceRequest>>& batches) {
  SWAPP_SPAN("service.run_coalesced");
  std::vector<ServiceRequest> combined;
  for (const std::vector<ServiceRequest>& batch : batches) {
    combined.insert(combined.end(), batch.begin(), batch.end());
  }
  CoalescedReport report;
  report.combined = run(combined);
  std::size_t next = 0;
  for (const std::vector<ServiceRequest>& batch : batches) {
    report.slices.emplace_back(
        report.combined.results.begin() + static_cast<std::ptrdiff_t>(next),
        report.combined.results.begin() +
            static_cast<std::ptrdiff_t>(next + batch.size()));
    next += batch.size();
  }
  return report;
}

}  // namespace swapp::service
