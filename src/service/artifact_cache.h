// Content-addressed artifact store for the batch projection service.
//
// Every expensive input of a projection — an IMB database, a SPEC-style
// library, an application base profile, an indexed spec view, a surrogate
// search result — is a pure function of a describable set of inputs.  The
// cache keys each artifact by an FNV-1a fingerprint of its canonical input
// description (serialised with io/record so the key survives formatting
// churn), keeps a bounded in-memory tier per kind, and, when a cache
// directory is configured, persists the kinds io/persist can round-trip
// (IMB databases, spec libraries, app profiles, surrogate projections) so a
// later process can skip simulation — and the GA search — entirely.  Spec
// indexes are cheap to rebuild relative to their inputs and stay
// memory-only.
//
// Cross-process coordination: persistent-kind misses are serialised through
// a per-key flock lock file, so concurrent standalone processes sharing one
// cache directory compute each artifact once instead of racing (the loser
// of the race re-probes the disk after acquiring the lock and finds the
// winner's file).  The resident daemon is unaffected — it already owns its
// directory, so its locks are always uncontended.
//
// Correctness stance: values are returned as shared_ptr-to-const, so an
// entry evicted while in use stays alive for its holders; a corrupted or
// truncated disk file is counted, discarded, and recomputed — never trusted.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/compute_projection.h"
#include "core/profiles.h"
#include "core/spec_index.h"
#include "imb/suite.h"
#include "machine/machine.h"

namespace swapp::service {

/// Where a requested artifact actually came from.
enum class ArtifactSource { kComputed, kMemory, kDisk };
std::string to_string(ArtifactSource source);

/// Counters over one cache's lifetime (all kinds pooled).
struct CacheStats {
  std::size_t memory_hits = 0;
  std::size_t disk_hits = 0;
  std::size_t misses = 0;      ///< computed fresh (includes disk misses)
  std::size_t evictions = 0;   ///< memory-tier cost-aware evictions
  std::size_t corrupt_files = 0;  ///< disk entries rejected and recomputed
  std::size_t disk_evictions = 0;  ///< files removed to honour the byte cap
  std::size_t lock_waits = 0;  ///< misses that blocked on another process
};

/// 64-bit FNV-1a over a canonical input description.
std::uint64_t fingerprint(const std::string& canonical);
std::string fingerprint_hex(std::uint64_t value);

// --- canonical input descriptions ------------------------------------------
// Each helper serialises the inputs that determine an artifact with
// io::RecordWriter, so two call sites agree on a key iff they agree on the
// inputs.  Machine models are identified by name plus headline geometry (the
// models themselves are code; changing code invalidates caches by version).
std::string describe_machine(const machine::Machine& m);
std::string describe_imb_inputs(const machine::Machine& m,
                                const std::vector<int>& core_counts,
                                const std::vector<Bytes>& sizes);
std::string describe_spec_inputs(const machine::Machine& base,
                                 const std::vector<machine::Machine>& targets,
                                 const std::vector<int>& task_counts);
std::string describe_app_inputs(const std::string& app_name,
                                const machine::Machine& base, int threads,
                                const std::vector<int>& mpi_counts,
                                const std::vector<int>& counter_counts);

class ArtifactCache {
 public:
  /// `cache_dir` empty disables the disk tier; otherwise the directory is
  /// created on first save.  `capacity_per_kind` bounds each kind's memory
  /// tier; beyond it the entry with the lowest observed cost-per-byte is
  /// evicted (the cheapest to bring back relative to the memory it holds;
  /// LRU breaks ties, so uniform costs degrade to plain LRU).
  /// `max_disk_bytes` (0 = unbounded) caps the disk
  /// tier: after every save, oldest-mtime `.swapp` files are removed until
  /// the directory fits the cap again (the just-written file is never the
  /// victim, so a single artifact larger than the cap still persists).
  explicit ArtifactCache(std::filesystem::path cache_dir = {},
                         std::size_t capacity_per_kind = 16,
                         std::uintmax_t max_disk_bytes = 0);
  ~ArtifactCache();

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Each getter returns the artifact for `canonical_inputs`, preferring
  /// memory, then disk (persistent kinds), then `make()`; `source` (if
  /// non-null) reports which tier satisfied the request.  Thread-safe;
  /// `make` runs outside the cache lock, so concurrent first requests for
  /// the same key may compute twice (harmlessly — the value is a pure
  /// function of the key).
  std::shared_ptr<const imb::ImbDatabase> imb_database(
      const std::string& canonical_inputs,
      const std::function<imb::ImbDatabase()>& make,
      ArtifactSource* source = nullptr);
  std::shared_ptr<const core::SpecLibrary> spec_library(
      const std::string& canonical_inputs,
      const std::function<core::SpecLibrary()>& make,
      ArtifactSource* source = nullptr);
  std::shared_ptr<const core::AppBaseData> app_data(
      const std::string& canonical_inputs,
      const std::function<core::AppBaseData()>& make,
      ArtifactSource* source = nullptr);

  /// Memory-only kind (derived artifact, cheap to rebuild from its library).
  std::shared_ptr<const core::SpecIndex> spec_index(
      const std::string& canonical_inputs,
      const std::function<core::SpecIndex()>& make,
      ArtifactSource* source = nullptr);

  /// Persistent: a finished GA search is the single most expensive artifact
  /// per byte the pipeline produces, so warm processes replay it from disk.
  /// The canonical inputs MUST describe everything the search consumed —
  /// including the spec-library inputs — or a stale surrogate could pair
  /// with a different library.
  std::shared_ptr<const core::ComputeProjection> surrogate_projection(
      const std::string& canonical_inputs,
      const std::function<core::ComputeProjection()>& make,
      ArtifactSource* source = nullptr);

  const std::filesystem::path& cache_dir() const noexcept {
    return cache_dir_;
  }
  bool persistent() const noexcept { return !cache_dir_.empty(); }
  CacheStats stats() const;

  /// Half-life (seconds) of the age decay applied to the memory-tier
  /// eviction score: an entry's cost-per-byte halves for every half-life it
  /// goes untouched, so a long-lived daemon cannot pin a once-expensive
  /// artifact forever.  0 disables decay.  Default: 30 minutes.
  void set_eviction_half_life(Seconds half_life);

  /// Test seam: ages every resident entry by `seconds` without sleeping
  /// (subtracts from the last-touch stamps, deterministically).
  void debug_age_entries(Seconds seconds);

 private:
  struct Impl;
  std::filesystem::path cache_dir_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace swapp::service
