// The analytic compute model: evaluates a kernel on a machine and returns
// execution time together with simulated PMU counters.
//
// The model is a CPI stack, the same decomposition the paper's metric groups
// encode: completion CPI (G1) plus stall CPI split into FP, memory, branch
// and other components (G2), with the memory component derived from the cache
// hierarchy's reload breakdown (G5), translation misses (G4) and a bandwidth
// ceiling (G6).  This is a first-principles model, not a lookup table: every
// counter responds to machine parameters, SMT mode, and the number of active
// cores sharing the node, which is what gives the ACSM/CCSM models something
// real to detect.
#pragma once

#include "machine/counters.h"
#include "machine/machine.h"
#include "workload/kernel.h"

namespace swapp::workload {

/// Result of running a kernel once.
struct ComputeSample {
  Seconds seconds = 0.0;
  machine::PmuCounters counters;
};

/// OpenMP thread-level model (the paper's §6 future-work extension).
///
/// A rank's compute phase with T threads follows Amdahl's law plus region
/// management cost: the serial fraction runs on one thread, the parallel
/// remainder is divided across T threads (each with a T-times smaller
/// footprint but sharing the node with rank_count · T active cores), and
/// every parallel region pays a fork/join overhead.
struct OmpModel {
  double serial_fraction = 0.03;
  Seconds fork_join_overhead = 4_us;
  /// Parallel regions entered per kernel invocation (one per solver sweep).
  double regions_per_invocation = 3.0;
};

/// Execution context for a kernel evaluation.
struct ComputeContext {
  /// Hardware threads currently executing on the same node (ranks × OpenMP
  /// threads; determines shared cache and bandwidth partitioning).
  int active_cores_per_node = 1;
  machine::SmtMode smt = machine::SmtMode::kSingleThread;
  /// OpenMP threads per rank (1 = pure MPI).
  int omp_threads = 1;
  OmpModel omp;
};

/// Evaluates `points` worth of `kernel` on `m`.
///
/// `points` is the per-rank problem share; the returned time is the rank's
/// compute time for one sweep over those points.  With ctx.omp_threads > 1
/// the thread-level model above applies; counters describe the whole rank
/// (all threads' instructions, rank-level rates).
ComputeSample evaluate(const Kernel& kernel, double points,
                       const machine::Machine& m, const ComputeContext& ctx);

}  // namespace swapp::workload
