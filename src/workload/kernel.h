// Compute-kernel characterisation.
//
// Applications and benchmarks are modelled as sequences of kernels, each
// described by an instruction mix and a memory-access signature.  The compute
// model (compute_model.h) evaluates a kernel on a machine configuration to
// produce execution time and the full set of simulated PMU counters — the
// data HPMCOUNT provides in the paper.
#pragma once

#include <string>

#include "support/units.h"

namespace swapp::workload {

/// Static characteristics of one compute kernel.
///
/// All fractions are of dynamic instructions and must satisfy
/// fp + load + store + branch <= 1 (the remainder is integer/other work).
struct Kernel {
  std::string name;

  // --- Instruction mix -----------------------------------------------------
  double fp_fraction = 0.25;
  double load_fraction = 0.30;
  double store_fraction = 0.12;
  double branch_fraction = 0.08;

  /// Average exploitable instruction-level parallelism (1 = serial chain).
  double ilp = 3.0;
  /// Fraction of FP work expressible with SIMD on machines that have it.
  double vectorizable = 0.0;
  /// How predictable the branches are, 0 (random) .. 1 (perfectly regular).
  double branch_predictability = 0.9;

  // --- Memory signature ----------------------------------------------------
  /// Bytes of distinct data touched per "point" of the problem.
  double bytes_per_point = 64.0;
  /// Locality exponent θ of the footprint model (see machine::hit_fraction):
  /// small = strong reuse concentration, 1 = streaming.
  double locality_theta = 0.35;
  /// Fraction of loads that are serialised pointer chases (no MLP).
  double pointer_chasing = 0.0;
  /// Achievable memory-level parallelism for the remaining misses.
  double mlp = 4.0;
  /// Fraction of memory traffic that crosses sockets on NUMA nodes.
  double remote_access_fraction = 0.1;
  /// Page-access dispersion: 0 = dense pages, 1 = every access a new page.
  double tlb_hostility = 0.02;
  /// Fraction of miss traffic that is sequential (prefetchable) streaming.
  double streaming_fraction = 0.7;

  /// Times the working set is re-traversed within one kernel invocation
  /// (e.g. the x/y/z solver passes of a timestep).  Determines how many
  /// fresh-line touches per instruction reach beyond L1.
  double sweep_passes = 3.0;

  // --- Work density ---------------------------------------------------------
  /// Dynamic instructions executed per point per sweep of the kernel.
  double instructions_per_point = 100.0;

  /// Total instructions for a given number of points.
  double instructions(double points) const {
    return instructions_per_point * points;
  }
  /// Per-rank working-set size for a given number of points.
  Bytes working_set(double points) const {
    const double bytes = bytes_per_point * points;
    return bytes < 1.0 ? 1 : static_cast<Bytes>(bytes);
  }
};

}  // namespace swapp::workload
