#include "workload/compute_model.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace swapp::workload {

using machine::PmuCounters;

namespace {

/// Single-thread evaluation: the CPI-stack core of the model.
ComputeSample evaluate_single(const Kernel& kernel, double points,
                              const machine::Machine& m,
                              const ComputeContext& ctx) {
  SWAPP_REQUIRE(points > 0.0, "kernel evaluation needs positive points");
  SWAPP_REQUIRE(ctx.active_cores_per_node >= 1,
                "active cores per node must be >= 1");
  SWAPP_REQUIRE(ctx.active_cores_per_node <= m.cores_per_node,
                "more active cores than the node has");
  const machine::ProcessorConfig& p = m.processor;
  const bool smt_on =
      ctx.smt == machine::SmtMode::kSmt && p.smt_ways > 1;

  const double instructions = kernel.instructions(points);
  const Bytes working_set = kernel.working_set(points);
  const double loads = kernel.load_fraction;

  // SMT doubles the threads sharing each core's cache slice and issue width.
  const int effective_sharers =
      ctx.active_cores_per_node * (smt_on ? p.smt_ways : 1);
  const machine::ReloadBreakdown rb = m.caches.reloads(
      working_set, kernel.locality_theta, effective_sharers,
      kernel.remote_access_fraction);

  // ---- G1: completion CPI ---------------------------------------------------
  const double issue_limited =
      1.0 / std::min<double>(p.issue_width, std::max(1.0, kernel.ilp));
  const double smt_share = smt_on ? p.smt_issue_efficiency : 1.0;
  const double cpi_completion = issue_limited / smt_share;

  // ---- G2: FP stalls --------------------------------------------------------
  const double fp_rate =
      p.fp_per_cycle * (1.0 + (p.simd_width - 1.0) * kernel.vectorizable);
  const double fp_issue_cpi =
      std::max(0.0, kernel.fp_fraction / fp_rate -
                        kernel.fp_fraction / p.issue_width) /
      smt_share;
  const double fp_dependency_cpi = kernel.fp_fraction * p.fp_latency_cycles /
                                   std::max(1.0, kernel.ilp) *
                                   (1.0 - p.ooo_window_factor);
  const double cpi_stall_fp = fp_issue_cpi + fp_dependency_cpi;

  // ---- G2: branch stalls ----------------------------------------------------
  const double mispredict_rate =
      kernel.branch_fraction *
      std::max(0.0, 1.0 - kernel.branch_predictability * p.predictor_strength);
  const double cpi_stall_branch = mispredict_rate * p.branch_penalty_cycles;

  // ---- G4: translation misses ----------------------------------------------
  const double ws = static_cast<double>(working_set);
  const double tlb_reach = p.tlb_entries * static_cast<double>(p.page_bytes);
  const double tlb_excess = std::max(0.0, 1.0 - tlb_reach / ws);
  const double tlb_miss_rate = loads * kernel.tlb_hostility * tlb_excess;

  double erat_miss_rate = 0.0;
  if (p.has_erat) {
    const double erat_reach =
        p.erat_entries * static_cast<double>(p.page_bytes);
    const double erat_excess = std::max(0.0, 1.0 - erat_reach / ws);
    erat_miss_rate =
        loads * (kernel.tlb_hostility * 2.0 + 0.002) * erat_excess;
  }
  double slb_miss_rate = 0.0;
  if (p.has_slb) {
    // Segments are 256 MiB; misses only matter for very large footprints.
    slb_miss_rate = loads * 5e-5 * std::min(1.0, ws / (256.0 * 1024 * 1024));
  }

  // ---- G5 + G2: memory reloads and stalls -----------------------------------
  //
  // Reloads beyond L1 are counted per *fresh line touch*, not per access:
  // each sweep over the working set touches bytes_per_point · points distinct
  // bytes, of which one reload per cache line reaches past L1; dense temporal
  // reuse within a point's computation stays in L1/registers.  Irregular
  // kernels additionally pay a per-access miss component (pointer chases and
  // a fraction of their non-streaming accesses).  The footprint model then
  // distributes those deep accesses across L2/L3/memory.
  const auto& levels = m.caches.levels();
  const double mlp_eff = std::clamp(
      std::min(kernel.mlp, static_cast<double>(p.max_outstanding_misses)), 1.0,
      64.0);
  const double overlap =
      (1.0 - kernel.pointer_chasing) * (1.0 - p.ooo_window_factor) / mlp_eff +
      kernel.pointer_chasing;  // chased loads pay the whole latency

  const double line_bytes = static_cast<double>(levels.back().line_bytes);
  const double fresh_lines_per_instr =
      kernel.bytes_per_point * kernel.sweep_passes /
      (kernel.instructions_per_point * line_bytes);
  const double irregular_per_instr =
      loads * (kernel.pointer_chasing +
               0.08 * (1.0 - kernel.streaming_fraction));
  const double deep_accesses_per_instr =
      fresh_lines_per_instr + irregular_per_instr;

  // Share of the access stream not absorbed by L1 under the footprint model;
  // deep accesses are split across L2/L3/memory in those proportions.
  const double beyond_l1 = std::max(1e-12, 1.0 - rb.cache_fraction[0]);

  double cpi_stall_mem = 0.0;
  double reload_l2 = 0.0;
  double reload_l3 = 0.0;
  double reload_lmem = 0.0;
  double reload_rmem = 0.0;
  double mem_traffic_per_instr = 0.0;

  for (std::size_t lvl = 1; lvl < levels.size(); ++lvl) {
    const double share = rb.cache_fraction[lvl] / beyond_l1;
    const double reloads_per_instr = deep_accesses_per_instr * share;
    cpi_stall_mem += reloads_per_instr * levels[lvl].latency_cycles * overlap;
    if (levels[lvl].name == "L2") reload_l2 += reloads_per_instr;
    else reload_l3 += reloads_per_instr;  // deeper levels folded into m5,2
  }
  {
    const double prefetch_discount =
        1.0 - p.prefetch_strength * kernel.streaming_fraction;
    const auto& mem = m.caches.memory();

    const double lmem_reloads =
        deep_accesses_per_instr * rb.local_mem_fraction / beyond_l1;
    const double rmem_reloads =
        deep_accesses_per_instr * rb.remote_mem_fraction / beyond_l1;
    cpi_stall_mem += lmem_reloads * mem.latency_cycles * overlap *
                     prefetch_discount;
    cpi_stall_mem += rmem_reloads * mem.remote_latency_cycles * overlap *
                     prefetch_discount;
    reload_lmem = lmem_reloads;
    reload_rmem = rmem_reloads;

    // Line fills plus write-allocate/writeback traffic for stores.
    const double store_traffic_factor = 1.0 + 1.5 * kernel.store_fraction /
                                                  std::max(loads, 1e-9);
    mem_traffic_per_instr =
        (lmem_reloads + rmem_reloads) * line_bytes * store_traffic_factor;
  }

  // SMT threads cover part of each other's memory stalls.
  if (smt_on) cpi_stall_mem *= 0.80;

  // ---- translation penalties + fixed structural stalls → "other" ------------
  const double cpi_stall_other = 0.04 + tlb_miss_rate * p.tlb_penalty_cycles +
                                 erat_miss_rate * p.erat_penalty_cycles +
                                 slb_miss_rate * p.slb_penalty_cycles;

  // ---- assemble time with the bandwidth ceiling (G6) ------------------------
  const double cpi_cpu = cpi_completion + cpi_stall_fp + cpi_stall_branch +
                         cpi_stall_mem + cpi_stall_other;
  const Seconds cycle = m.cycle_time();
  const Seconds t_cpu = instructions * cpi_cpu * cycle;

  const double total_bytes = instructions * mem_traffic_per_instr;
  const double bw_per_core_gbs =
      m.caches.memory().node_bandwidth_gbs /
      static_cast<double>(ctx.active_cores_per_node) * smt_share /
      (smt_on ? 1.0 : 1.0);
  const Seconds t_bw = total_bytes / (bw_per_core_gbs * 1e9);

  // Smooth max: compute- and bandwidth-bound regimes blend near the ceiling.
  constexpr double kP = 4.0;
  const Seconds t_total =
      std::pow(std::pow(t_cpu, kP) + std::pow(t_bw, kP), 1.0 / kP);

  ComputeSample out;
  out.seconds = t_total;
  PmuCounters& c = out.counters;
  c.instructions = instructions;
  c.seconds = t_total;
  c.cycles = t_total / cycle;
  c.cpi_completion = cpi_completion;
  c.cpi_stall_fp = cpi_stall_fp;
  c.cpi_stall_branch = cpi_stall_branch;
  // Bandwidth-induced extra cycles show up as memory stalls, exactly as a
  // real CPI-stack counter decomposition would report them.
  c.cpi_stall_mem = cpi_stall_mem + (t_total - t_cpu) / (instructions * cycle);
  c.cpi_stall_other = cpi_stall_other;
  c.fp_per_instr = kernel.fp_fraction;
  // Visible on any ISA through the instruction mix (paired/FMA FP patterns),
  // independent of whether this machine's FP pipes exploit it.
  c.fp_vector_fraction = kernel.vectorizable;
  c.erat_miss_rate = erat_miss_rate;
  c.slb_miss_rate = slb_miss_rate;
  c.tlb_miss_rate = tlb_miss_rate;
  c.data_from_l2_per_instr = reload_l2;
  c.data_from_l3_per_instr = reload_l3;
  c.data_from_local_mem_per_instr = reload_lmem;
  c.data_from_remote_mem_per_instr = reload_rmem;
  c.memory_bandwidth_gbs = t_total > 0.0 ? total_bytes / t_total / 1e9 : 0.0;
  return out;
}

}  // namespace

ComputeSample evaluate(const Kernel& kernel, double points,
                       const machine::Machine& m, const ComputeContext& ctx) {
  SWAPP_REQUIRE(ctx.omp_threads >= 1, "omp_threads must be >= 1");
  if (ctx.omp_threads == 1) return evaluate_single(kernel, points, m, ctx);

  // --- Hybrid MPI/OpenMP rank (paper §6 extension) ---------------------------
  const int threads = ctx.omp_threads;
  SWAPP_REQUIRE(ctx.active_cores_per_node <= m.cores_per_node,
                "more active hardware threads than the node has cores");
  const OmpModel& omp = ctx.omp;
  SWAPP_REQUIRE(omp.serial_fraction >= 0.0 && omp.serial_fraction <= 1.0,
                "serial fraction must be in [0,1]");

  // Parallel part: each thread sweeps points/T with a T-times smaller
  // footprint, sharing the node with every other active hardware thread.
  ComputeContext thread_ctx = ctx;
  thread_ctx.omp_threads = 1;
  const ComputeSample parallel = evaluate_single(
      kernel, points / threads, m, thread_ctx);

  // Serial part: one thread, whole-rank footprint, same node pressure.
  const ComputeSample serial = evaluate_single(kernel, points, m, thread_ctx);

  ComputeSample out;
  out.seconds = omp.serial_fraction * serial.seconds +
                (1.0 - omp.serial_fraction) * parallel.seconds +
                omp.regions_per_invocation * omp.fork_join_overhead;

  // Counters describe the whole rank: all threads execute the parallel
  // instructions, rates follow the parallel part's behaviour (which
  // dominates execution), wall-clock fields follow the rank time.
  out.counters = parallel.counters;
  out.counters.instructions =
      parallel.counters.instructions * threads * (1.0 - omp.serial_fraction) +
      serial.counters.instructions * omp.serial_fraction;
  out.counters.seconds = out.seconds;
  out.counters.cycles = out.seconds / m.cycle_time();
  // Rank-level bandwidth: all threads stream concurrently.
  out.counters.memory_bandwidth_gbs =
      std::min(parallel.counters.memory_bandwidth_gbs * threads,
               m.caches.memory().node_bandwidth_gbs);
  return out;
}

}  // namespace swapp::workload
